//! Compiled interaction schema and live weight state, shared by the jump
//! and count engines.
//!
//! A protocol's declarative [`InteractionSchema`] is compiled once per
//! engine construction into a [`CompiledSchema`] (flags, the equal-rank
//! membership table, the sparse-pair index), and the engine keeps one
//! [`ClassState`]: the occupancy counts plus every per-class weight
//! structure, updated incrementally on each count change. Both engines
//! sample the next productive ordered state pair through
//! [`ClassState::sample_pair`] with the same single-RNG-draw discipline, so
//! "jump and count are trace-identical per seed" is structural rather than
//! a convention two copies must uphold by hand.
//!
//! The class weight decomposition over occupancy counts `c_s` (with `R`/`E`
//! the number of agents in rank/extra states):
//!
//! ```text
//! W = Σ_s c_s(c_s − 1)·[equal-rank rule at s]      (equal-rank tree)
//!   + E(E − 1)·[extra–extra declared]
//!   + R·E·dirs                                     (rank–extra cross)
//!   + Σ_(a,b) c_a·(c_b − [a = b])                  (enumerated sparse pairs)
//! ```

use crate::error::ConfigError;
use crate::protocol::{ClassSpec, CrossDirection, InteractionClass, InteractionSchema, State};
use crate::rng::Xoshiro256;

/// At or below this many remaining draws, [`WeightTree::split`] switches
/// from binomial splitting to direct weighted descends (cheaper in RNG
/// draws, identical in distribution).
const SPLIT_DIRECT_THRESHOLD: u64 = 8;

/// Complete binary weight tree over `u64` weights: `O(log n)` point
/// updates, `O(1)` totals, `O(log n)` weighted sampling, and — the reason
/// it exists next to [`Fenwick`](crate::fenwick::Fenwick) — recursive
/// multinomial **splitting** of a batch over all weighted slots in
/// `O(occupied)` binomial draws.
///
/// `sample` maps a target offset to the slot containing it in prefix-sum
/// order, exactly like [`Fenwick::sample`](crate::fenwick::Fenwick::sample),
/// so the two structures are interchangeable draw-for-draw.
#[derive(Debug, Clone)]
pub struct WeightTree {
    /// Number of leaves (padded to a power of two).
    size: usize,
    /// Logical slot count.
    len: usize,
    /// 1-based heap layout; `tree[1]` is the root, leaves start at `size`.
    tree: Vec<u64>,
}

impl WeightTree {
    /// Tree of `len` zero weights.
    pub fn new(len: usize) -> Self {
        let size = len.next_power_of_two().max(1);
        WeightTree {
            size,
            len,
            tree: vec![0; 2 * size],
        }
    }

    /// Number of slots.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if the tree has no slots.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Current weight at `index`.
    #[inline]
    pub fn weight(&self, index: usize) -> u64 {
        self.tree[self.size + index]
    }

    /// Sum of all weights.
    #[inline]
    pub fn total(&self) -> u64 {
        self.tree[1]
    }

    /// Set the weight at `index` to `value`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= len()`.
    #[inline]
    pub fn set(&mut self, index: usize, value: u64) {
        assert!(index < self.len, "weight index out of range");
        let mut node = self.size + index;
        let old = self.tree[node];
        if old == value {
            return;
        }
        // Delta propagation: one read-modify-write per ancestor.
        if value >= old {
            let delta = value - old;
            while node >= 1 {
                self.tree[node] += delta;
                node >>= 1;
            }
        } else {
            let delta = old - value;
            while node >= 1 {
                self.tree[node] -= delta;
                node >>= 1;
            }
        }
    }

    /// Slot containing offset `target` when weights are laid end to end
    /// (identical mapping to
    /// [`Fenwick::sample`](crate::fenwick::Fenwick::sample)).
    ///
    /// # Panics
    ///
    /// Debug-panics if `target >= total()`.
    #[inline]
    pub fn sample(&self, mut target: u64) -> usize {
        debug_assert!(target < self.total(), "sample target out of range");
        let mut node = 1usize;
        while node < self.size {
            let left = 2 * node;
            if self.tree[left] > target {
                node = left;
            } else {
                target -= self.tree[left];
                node = left + 1;
            }
        }
        node - self.size
    }

    /// Split a batch of `b` weighted draws across all slots: appends
    /// `(slot, k_slot)` pairs with `Σ k_slot == b`, distributed
    /// multinomially with probabilities proportional to slot weights.
    ///
    /// Implemented by recursive binomial splitting at each tree node, so
    /// the cost is `O(occupied)` binomial draws rather than `O(b)` samples.
    ///
    /// # Panics
    ///
    /// Debug-panics if `b > 0` with zero total weight.
    pub fn split(&self, b: u64, rng: &mut Xoshiro256, out: &mut Vec<(usize, u64)>) {
        if b == 0 {
            return;
        }
        debug_assert!(self.total() > 0, "cannot split over zero weight");
        self.split_rec(1, b, rng, out);
    }

    fn split_rec(&self, node: usize, b: u64, rng: &mut Xoshiro256, out: &mut Vec<(usize, u64)>) {
        if b == 0 {
            return;
        }
        if node >= self.size {
            out.push((node - self.size, b));
            return;
        }
        if b <= SPLIT_DIRECT_THRESHOLD {
            // Few draws left in this subtree: b direct weighted descends
            // (one RNG draw each) beat a binomial per level. Identical in
            // distribution — both are the multinomial over leaf weights.
            let total = self.tree[node];
            for _ in 0..b {
                let mut target = rng.below(total);
                let mut pos = node;
                while pos < self.size {
                    let left = 2 * pos;
                    if self.tree[left] > target {
                        pos = left;
                    } else {
                        target -= self.tree[left];
                        pos = left + 1;
                    }
                }
                let leaf = pos - self.size;
                // Runs of the same leaf are coalesced opportunistically;
                // duplicates across runs are harmless to the caller.
                match out.last_mut() {
                    Some((last, k)) if *last == leaf => *k += 1,
                    _ => out.push((leaf, 1)),
                }
            }
            return;
        }
        let left = 2 * node;
        let wl = self.tree[left];
        let wr = self.tree[left + 1];
        let kl = if wr == 0 {
            b
        } else if wl == 0 {
            0
        } else {
            rng.binomial(b, wl as f64 / (wl + wr) as f64)
        };
        self.split_rec(left, kl, rng, out);
        self.split_rec(left + 1, b - kl, rng, out);
    }
}

/// A protocol's [`InteractionSchema`] flattened into the form the engines
/// consume: flags per structured class, the equal-rank membership table,
/// and an index over the enumerated sparse pairs.
#[derive(Debug, Clone)]
pub(crate) struct CompiledSchema {
    /// Whether the `EqualRank` class is declared.
    pub eq: bool,
    pub eq_exchangeable: bool,
    /// `has_eq[s]` for rank states (empty when `eq` is false).
    pub has_eq: Vec<bool>,
    /// Whether the `ExtraExtra` class is declared.
    pub xx: bool,
    pub xx_exchangeable: bool,
    /// Declared cross direction(s), if any (two single-direction
    /// declarations merge into `Both`).
    pub cross: Option<CrossDirection>,
    pub cross_exchangeable: bool,
    /// Enumerated sparse pairs, in declaration order.
    pub pairs: Vec<(State, State)>,
    /// All sparse pairs exchangeable (the batch granularity is the class).
    pub pairs_exchangeable: bool,
    /// For each state, the indices into `pairs` whose weight depends on
    /// that state's occupancy (empty when there are no pairs).
    pub pairs_by_state: Vec<Vec<u32>>,
}

impl CompiledSchema {
    /// Flatten `p`'s declared classes.
    ///
    /// # Panics
    ///
    /// Panics on declarations no engine can execute: duplicate structured
    /// classes, duplicate enumerated pairs, or pair states out of range.
    /// (Semantic agreement with the transition function is checked by
    /// [`crate::protocol::validate_interaction_schema`], not here.)
    pub fn compile<P: InteractionSchema + ?Sized>(p: &P) -> Self {
        let num_ranks = p.num_rank_states();
        let num_states = p.num_states();
        let mut schema = CompiledSchema {
            eq: false,
            eq_exchangeable: true,
            has_eq: Vec::new(),
            xx: false,
            xx_exchangeable: true,
            cross: None,
            cross_exchangeable: true,
            pairs: Vec::new(),
            pairs_exchangeable: true,
            pairs_by_state: Vec::new(),
        };
        for ClassSpec {
            class,
            exchangeable,
        } in p.interaction_classes()
        {
            match class {
                InteractionClass::EqualRank => {
                    assert!(!schema.eq, "EqualRank class declared twice");
                    schema.eq = true;
                    schema.eq_exchangeable = exchangeable;
                }
                InteractionClass::ExtraExtra => {
                    assert!(!schema.xx, "ExtraExtra class declared twice");
                    schema.xx = true;
                    schema.xx_exchangeable = exchangeable;
                }
                InteractionClass::RankExtra(d) => {
                    schema.cross = Some(match (schema.cross, d) {
                        (None, d) => d,
                        (Some(CrossDirection::RankInitiator), CrossDirection::ExtraInitiator)
                        | (Some(CrossDirection::ExtraInitiator), CrossDirection::RankInitiator) => {
                            CrossDirection::Both
                        }
                        (Some(prev), d) => {
                            panic!("RankExtra directions {prev:?} and {d:?} overlap")
                        }
                    });
                    schema.cross_exchangeable &= exchangeable;
                }
                InteractionClass::Pair {
                    initiator,
                    responder,
                } => {
                    assert!(
                        (initiator as usize) < num_states && (responder as usize) < num_states,
                        "sparse pair ({initiator},{responder}) out of state range"
                    );
                    assert!(
                        !schema.pairs.contains(&(initiator, responder)),
                        "sparse pair ({initiator},{responder}) declared twice"
                    );
                    schema.pairs.push((initiator, responder));
                    schema.pairs_exchangeable &= exchangeable;
                }
            }
        }
        if schema.eq {
            schema.has_eq = (0..num_ranks)
                .map(|s| p.equal_rank_rule(s as State))
                .collect();
        }
        if !schema.pairs.is_empty() {
            schema.pairs_by_state = vec![Vec::new(); num_states];
            for (i, &(a, b)) in schema.pairs.iter().enumerate() {
                schema.pairs_by_state[a as usize].push(i as u32);
                if b != a {
                    schema.pairs_by_state[b as usize].push(i as u32);
                }
            }
        }
        schema
    }
}

/// Weight of one enumerated ordered state pair under `counts`.
#[inline]
fn pair_weight(counts: &[u32], a: State, b: State) -> u64 {
    let ca = counts[a as usize] as u64;
    if a == b {
        ca * ca.saturating_sub(1)
    } else {
        ca * counts[b as usize] as u64
    }
}

/// Live weight state for a compiled schema: occupancy counts plus every
/// per-class weight structure, kept consistent through
/// [`update_count`](Self::update_count).
#[derive(Debug, Clone)]
pub(crate) struct ClassState {
    pub schema: CompiledSchema,
    pub counts: Vec<u32>,
    pub num_ranks: usize,
    /// Per-rank-state weight `c(c−1)` where an equal-rank rule exists
    /// (zero-length when the class is not declared).
    pub eq: WeightTree,
    /// Per-rank-state occupancy, for cross-pair sampling and splitting
    /// (zero-length when no cross class is declared).
    pub rank_occ: WeightTree,
    /// Per-sparse-pair weight (zero-length without enumerated pairs).
    pub sparse: WeightTree,
    pub rank_agents: u64,
    pub extra_agents: u64,
    /// Upper bound on the occupancy of any rank state with an equal-rank
    /// rule; grows eagerly on updates, shrinks only on
    /// [`refresh_max_eq`](Self::refresh_max_eq). Drives the count engine's
    /// equal-rank batch cap; harmless bookkeeping for the jump engine.
    pub max_eq_bound: u64,
}

impl ClassState {
    /// Build the weight state for `protocol` from per-state occupancy
    /// counts.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError::WrongPopulation`] if the counts vector
    /// length differs from the state-space size or the counts do not sum
    /// to the population.
    pub fn new<P: InteractionSchema + ?Sized>(
        protocol: &P,
        counts: Vec<u32>,
    ) -> Result<Self, ConfigError> {
        let n = protocol.population_size();
        if counts.len() != protocol.num_states() {
            return Err(ConfigError::WrongPopulation {
                expected: protocol.num_states(),
                got: counts.len(),
            });
        }
        let total: u64 = counts.iter().map(|&c| c as u64).sum();
        if total != n as u64 {
            return Err(ConfigError::WrongPopulation {
                expected: n,
                got: total as usize,
            });
        }
        let schema = CompiledSchema::compile(protocol);
        let num_ranks = protocol.num_rank_states();
        let mut eq = WeightTree::new(if schema.eq { num_ranks } else { 0 });
        let mut rank_occ = WeightTree::new(if schema.cross.is_some() { num_ranks } else { 0 });
        let mut sparse = WeightTree::new(schema.pairs.len());
        let mut rank_agents = 0u64;
        let mut max_eq_bound = 1u64;
        for (s, &c) in counts.iter().take(num_ranks).enumerate() {
            let c = c as u64;
            rank_agents += c;
            if !rank_occ.is_empty() {
                rank_occ.set(s, c);
            }
            if schema.eq && schema.has_eq[s] {
                eq.set(s, c * c.saturating_sub(1));
                max_eq_bound = max_eq_bound.max(c);
            }
        }
        for (i, &(a, b)) in schema.pairs.iter().enumerate() {
            sparse.set(i, pair_weight(&counts, a, b));
        }
        let extra_agents = n as u64 - rank_agents;
        Ok(ClassState {
            schema,
            counts,
            num_ranks,
            eq,
            rank_occ,
            sparse,
            rank_agents,
            extra_agents,
            max_eq_bound,
        })
    }

    /// Add `delta` to the occupancy of state `s`, updating every weight
    /// structure the schema declares.
    #[inline]
    pub fn update_count(&mut self, s: State, delta: i64) {
        let su = s as usize;
        let c = (self.counts[su] as i64 + delta) as u32;
        self.counts[su] = c;
        if su < self.num_ranks {
            self.rank_agents = (self.rank_agents as i64 + delta) as u64;
            if !self.rank_occ.is_empty() {
                self.rank_occ.set(su, c as u64);
            }
            if self.schema.eq && self.schema.has_eq[su] {
                let c = c as u64;
                self.eq.set(su, c * c.saturating_sub(1));
                if c > self.max_eq_bound {
                    self.max_eq_bound = c;
                }
            }
        } else {
            self.extra_agents = (self.extra_agents as i64 + delta) as u64;
        }
        if !self.schema.pairs.is_empty() {
            for i in 0..self.schema.pairs_by_state[su].len() {
                let pi = self.schema.pairs_by_state[su][i] as usize;
                let (a, b) = self.schema.pairs[pi];
                self.sparse.set(pi, pair_weight(&self.counts, a, b));
            }
        }
    }

    /// Re-derive the exact maximum equal-rank occupancy (the tracked bound
    /// only grows between calls). `O(num_ranks)`.
    pub fn refresh_max_eq(&mut self) {
        let mut max = 1u64;
        for s in 0..self.num_ranks {
            if self.schema.has_eq[s] {
                max = max.max(self.counts[s] as u64);
            }
        }
        self.max_eq_bound = max;
    }

    /// Weight of the equal-rank class.
    #[inline]
    pub fn eq_weight(&self) -> u64 {
        self.eq.total()
    }

    /// Weight of the extra–extra class.
    #[inline]
    pub fn xx_weight(&self) -> u64 {
        if self.schema.xx {
            self.extra_agents * self.extra_agents.saturating_sub(1)
        } else {
            0
        }
    }

    /// Weight of the rank–extra cross class.
    #[inline]
    pub fn cross_weight(&self) -> u64 {
        match self.schema.cross {
            None => 0,
            Some(d) => d.multiplier() * self.rank_agents * self.extra_agents,
        }
    }

    /// Weight of the enumerated sparse-pair class.
    #[inline]
    pub fn sparse_weight(&self) -> u64 {
        self.sparse.total()
    }

    /// Total number of productive ordered pairs in the current
    /// configuration.
    #[inline]
    pub fn productive_pairs(&self) -> u64 {
        self.eq_weight() + self.xx_weight() + self.cross_weight() + self.sparse_weight()
    }

    /// Number of occupied extra states and the maximum extra-state
    /// occupancy. `O(num_extra_states)`.
    pub fn extra_occupancy(&self) -> (usize, u64) {
        let mut occupied = 0usize;
        let mut max = 0u64;
        for &c in &self.counts[self.num_ranks..] {
            if c > 0 {
                occupied += 1;
                max = max.max(c as u64);
            }
        }
        (occupied, max)
    }

    /// Sample the `idx`-th extra agent (0-based over all agents in extra
    /// states, grouped by state id) and return its state.
    pub fn extra_state_at(&self, mut idx: u64, skip_one_of: Option<State>) -> State {
        for s in self.num_ranks..self.counts.len() {
            let mut c = self.counts[s] as u64;
            if skip_one_of == Some(s as State) {
                c -= 1;
            }
            if idx < c {
                return s as State;
            }
            idx -= c;
        }
        unreachable!("extra agent index out of range");
    }

    /// Draw one productive ordered state pair with exactly one `below(W)`
    /// RNG draw, `W = ` [`productive_pairs`](Self::productive_pairs)
    /// (which the caller has verified to be positive). Class order is
    /// equal-rank, extra–extra, cross, sparse.
    pub fn sample_pair(&self, rng: &mut Xoshiro256) -> (State, State) {
        let w_eq = self.eq_weight();
        let w_xx = self.xx_weight();
        let w_cross = self.cross_weight();
        let w_sparse = self.sparse_weight();
        let mut u = rng.below(w_eq + w_xx + w_cross + w_sparse);
        if u < w_eq {
            let s = self.eq.sample(u) as State;
            return (s, s);
        }
        u -= w_eq;
        if u < w_xx {
            let e = self.extra_agents;
            let a = u / (e - 1);
            let b = u % (e - 1);
            let s1 = self.extra_state_at(a, None);
            let s2 = self.extra_state_at(b, Some(s1));
            return (s1, s2);
        }
        u -= w_xx;
        if u < w_cross {
            let re = self.rank_agents * self.extra_agents;
            let (extra_initiates, rem) = match self.schema.cross {
                Some(CrossDirection::RankInitiator) => (false, u),
                Some(CrossDirection::ExtraInitiator) => (true, u),
                Some(CrossDirection::Both) => (u >= re, u % re),
                None => unreachable!(),
            };
            let rank_idx = rem / self.extra_agents;
            let extra_idx = rem % self.extra_agents;
            let rank_state = self.rank_occ.sample(rank_idx) as State;
            let extra_state = self.extra_state_at(extra_idx, None);
            return if extra_initiates {
                (extra_state, rank_state)
            } else {
                (rank_state, extra_state)
            };
        }
        u -= w_cross;
        self.schema.pairs[self.sparse.sample(u)]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fenwick::Fenwick;
    use crate::protocol::Protocol;

    #[test]
    fn weight_tree_matches_reference() {
        let weights = [3u64, 0, 5, 1, 0, 0, 9, 2, 4, 0, 1];
        let mut t = WeightTree::new(weights.len());
        for (i, &w) in weights.iter().enumerate() {
            t.set(i, w);
        }
        assert_eq!(t.total(), weights.iter().sum::<u64>());
        assert_eq!(t.weight(6), 9);
        let mut offset = 0u64;
        for (i, &w) in weights.iter().enumerate() {
            if w > 0 {
                assert_eq!(t.sample(offset), i, "slot start {i}");
                assert_eq!(t.sample(offset + w - 1), i, "slot end {i}");
                offset += w;
            }
        }
    }

    #[test]
    fn weight_tree_sample_agrees_with_fenwick() {
        let mut t = WeightTree::new(37);
        let mut f = Fenwick::new(37);
        let mut rng = Xoshiro256::seed_from_u64(3);
        for i in 0..37 {
            let w = rng.below(9);
            t.set(i, w);
            f.set(i, w);
        }
        assert_eq!(t.total(), f.total());
        for target in 0..t.total() {
            assert_eq!(t.sample(target), f.sample(target), "target {target}");
        }
    }

    #[test]
    fn weight_tree_split_conserves_and_tracks_weights() {
        let mut t = WeightTree::new(16);
        for (i, w) in [(0usize, 100u64), (3, 300), (7, 500), (15, 100)] {
            t.set(i, w);
        }
        let mut rng = Xoshiro256::seed_from_u64(5);
        let mut totals = [0u64; 16];
        let b = 1000;
        let rounds = 200;
        for _ in 0..rounds {
            let mut out = Vec::new();
            t.split(b, &mut rng, &mut out);
            assert_eq!(out.iter().map(|&(_, k)| k).sum::<u64>(), b);
            for (i, k) in out {
                assert!(t.weight(i) > 0, "slot {i} drawn with zero weight");
                totals[i] += k;
            }
        }
        // Expected proportions 0.1 / 0.3 / 0.5 / 0.1 within a few percent.
        let grand = (b * rounds) as f64;
        for (i, expect) in [(0usize, 0.1), (3, 0.3), (7, 0.5), (15, 0.1)] {
            let got = totals[i] as f64 / grand;
            assert!(
                (got - expect).abs() < 0.02,
                "slot {i}: {got:.3} vs {expect}"
            );
        }
    }

    /// A protocol exercising every class shape at once: equal-rank rules,
    /// a cross class, extra–extra — declared exactly.
    struct AllClasses;
    impl Protocol for AllClasses {
        fn name(&self) -> &str {
            "all-classes"
        }
        fn population_size(&self) -> usize {
            6
        }
        fn num_states(&self) -> usize {
            8
        }
        fn num_rank_states(&self) -> usize {
            6
        }
        fn transition(&self, i: State, r: State) -> Option<(State, State)> {
            let rank = |s: State| (s as usize) < 6;
            match (rank(i), rank(r)) {
                (true, true) => (i == r).then_some((i, (r + 1) % 6)),
                // Extras always fall back to rank 5 (never identity).
                (false, false) => Some((5, 5)),
                (true, false) => Some((i, 5)),
                (false, true) => Some((5, r)),
            }
        }
    }
    impl InteractionSchema for AllClasses {
        fn interaction_classes(&self) -> Vec<ClassSpec> {
            vec![
                ClassSpec::equal_rank(),
                ClassSpec::extra_extra(),
                ClassSpec::rank_extra(CrossDirection::Both),
            ]
        }
    }

    #[test]
    fn class_state_weights_match_brute_force(){
        crate::protocol::validate_interaction_schema(&AllClasses).unwrap();
        // counts: ranks [2, 1, 0, 1, 0, 0], extras [1, 1]
        let counts = vec![2, 1, 0, 1, 0, 0, 1, 1];
        let st = ClassState::new(&AllClasses, counts.clone()).unwrap();
        // Brute force: count productive ordered agent pairs.
        let mut expect = 0u64;
        for a in 0..8u32 {
            for b in 0..8u32 {
                if AllClasses.transition(a, b).is_some() {
                    expect += pair_weight(&counts, a, b);
                }
            }
        }
        assert_eq!(st.productive_pairs(), expect);
        assert_eq!(st.eq_weight(), 2); // only state 0 has c(c−1) = 2
        assert_eq!(st.xx_weight(), 2); // E = 2
        assert_eq!(st.cross_weight(), 2 * 4 * 2); // both directions, R·E = 8
    }

    #[test]
    fn update_count_keeps_weights_consistent() {
        let counts = vec![2, 1, 0, 1, 0, 0, 1, 1];
        let mut st = ClassState::new(&AllClasses, counts).unwrap();
        st.update_count(0, -1);
        st.update_count(6, 1);
        let fresh = ClassState::new(&AllClasses, st.counts.clone()).unwrap();
        assert_eq!(st.productive_pairs(), fresh.productive_pairs());
        assert_eq!(st.eq_weight(), fresh.eq_weight());
        assert_eq!(st.rank_agents, fresh.rank_agents);
        assert_eq!(st.extra_agents, fresh.extra_agents);
        assert_eq!(st.extra_occupancy(), (2, 2));
    }

    /// Sparse-pair protocol: two rules on a 3-state space that fit no
    /// structured class.
    struct Sparse;
    impl Protocol for Sparse {
        fn name(&self) -> &str {
            "sparse"
        }
        fn population_size(&self) -> usize {
            4
        }
        fn num_states(&self) -> usize {
            3
        }
        fn num_rank_states(&self) -> usize {
            3
        }
        fn transition(&self, i: State, r: State) -> Option<(State, State)> {
            match (i, r) {
                (0, 1) => Some((0, 2)),
                (2, 2) => Some((1, 2)),
                _ => None,
            }
        }
    }
    impl InteractionSchema for Sparse {
        fn interaction_classes(&self) -> Vec<ClassSpec> {
            vec![ClassSpec::pair(0, 1), ClassSpec::pair(2, 2)]
        }
    }

    #[test]
    fn sparse_pair_weights_and_sampling() {
        crate::protocol::validate_interaction_schema(&Sparse).unwrap();
        let mut st = ClassState::new(&Sparse, vec![2, 1, 1]).unwrap();
        // (0,1): 2·1 = 2; (2,2): 1·0 = 0.
        assert_eq!(st.sparse_weight(), 2);
        assert_eq!(st.productive_pairs(), 2);
        let mut rng = Xoshiro256::seed_from_u64(9);
        for _ in 0..20 {
            assert_eq!(st.sample_pair(&mut rng), (0, 1));
        }
        // Move the state-1 agent to state 2: (0,1) dies, (2,2) lights up.
        st.update_count(1, -1);
        st.update_count(2, 1);
        assert_eq!(st.sparse_weight(), 2); // c_2(c_2−1) = 2·1
        for _ in 0..20 {
            assert_eq!(st.sample_pair(&mut rng), (2, 2));
        }
    }

    #[test]
    fn compile_merges_single_direction_crosses() {
        struct TwoDir;
        impl Protocol for TwoDir {
            fn name(&self) -> &str {
                "two-dir"
            }
            fn population_size(&self) -> usize {
                2
            }
            fn num_states(&self) -> usize {
                3
            }
            fn num_rank_states(&self) -> usize {
                2
            }
            fn transition(&self, i: State, r: State) -> Option<(State, State)> {
                let rank = |s: State| s < 2;
                (rank(i) != rank(r)).then_some(if rank(i) { (i, 0) } else { (0, r) })
            }
        }
        impl InteractionSchema for TwoDir {
            fn interaction_classes(&self) -> Vec<ClassSpec> {
                vec![
                    ClassSpec::rank_extra(CrossDirection::RankInitiator),
                    ClassSpec::rank_extra(CrossDirection::ExtraInitiator),
                ]
            }
        }
        crate::protocol::validate_interaction_schema(&TwoDir).unwrap();
        let schema = CompiledSchema::compile(&TwoDir);
        assert_eq!(schema.cross, Some(CrossDirection::Both));
    }

    #[test]
    fn sample_pair_covers_every_class_in_proportion() {
        let counts = vec![1, 2, 0, 0, 0, 0, 2, 1];
        let st = ClassState::new(&AllClasses, counts.clone()).unwrap();
        let w = st.productive_pairs();
        let mut rng = Xoshiro256::seed_from_u64(17);
        let trials = 40_000u64;
        let mut per_pair = std::collections::HashMap::new();
        for _ in 0..trials {
            *per_pair.entry(st.sample_pair(&mut rng)).or_insert(0u64) += 1;
        }
        for (&(a, b), &hits) in &per_pair {
            assert!(AllClasses.transition(a, b).is_some(), "null pair ({a},{b}) sampled");
            let expect = pair_weight(&counts, a, b) as f64 / w as f64;
            let got = hits as f64 / trials as f64;
            assert!(
                (got - expect).abs() < 0.01,
                "pair ({a},{b}): {got:.4} vs {expect:.4}"
            );
        }
        let covered: u64 = per_pair
            .keys()
            .map(|&(a, b)| pair_weight(&counts, a, b))
            .sum();
        assert_eq!(covered, w, "every positive-weight pair must be reachable");
    }
}
