//! Criterion benches: full stabilisation runs, one per paper protocol.
//!
//! These are the micro-scale counterparts of the experiment binaries —
//! one fixed population per protocol, stacked adversarial start, jump-chain
//! simulation to silence. Regenerates the relative ordering of the paper's
//! summary table (tree ≪ line ≲ ring ≈ A_G) as wall-clock numbers.

use criterion::{criterion_group, criterion_main, Criterion};
use ssr_core::{GenericRanking, LineOfTraps, RingOfTraps, TreeRanking};
use ssr_engine::{JumpSimulation, InteractionSchema};
use std::hint::black_box;

fn run_to_silence<P: InteractionSchema>(p: &P, seed: u64) -> u64 {
    let n = ssr_engine::Protocol::population_size(p);
    let mut sim = JumpSimulation::new(p, vec![0; n], seed).unwrap();
    sim.run_until_silent(u64::MAX).unwrap().interactions
}

fn bench_stabilisation(c: &mut Criterion) {
    let n = 240;
    let mut group = c.benchmark_group("stabilisation_n240");
    group.sample_size(10);

    let generic = GenericRanking::new(n);
    group.bench_function("generic_ag", |b| {
        let mut seed = 0;
        b.iter(|| {
            seed += 1;
            black_box(run_to_silence(&generic, seed))
        })
    });

    let ring = RingOfTraps::new(n);
    group.bench_function("ring_of_traps", |b| {
        let mut seed = 0;
        b.iter(|| {
            seed += 1;
            black_box(run_to_silence(&ring, seed))
        })
    });

    let line = LineOfTraps::new(n);
    group.bench_function("line_of_traps", |b| {
        let mut seed = 0;
        b.iter(|| {
            seed += 1;
            black_box(run_to_silence(&line, seed))
        })
    });

    let tree = TreeRanking::new(n);
    group.bench_function("tree_of_ranks", |b| {
        let mut seed = 0;
        b.iter(|| {
            seed += 1;
            black_box(run_to_silence(&tree, seed))
        })
    });

    group.finish();
}

fn bench_kdistant_recovery(c: &mut Criterion) {
    // Theorem 1's selling point as a bench: k = 1 recovery is far cheaper
    // than ranking from scratch.
    let n = 240;
    let ring = RingOfTraps::new(n);
    let mut group = c.benchmark_group("ring_recovery_n240");
    group.sample_size(10);
    for k in [1usize, 16, 120] {
        group.bench_function(format!("k_distant_{k}"), |b| {
            let mut seed = 0;
            b.iter(|| {
                seed += 1;
                let mut rng = ssr_engine::rng::Xoshiro256::seed_from_u64(seed);
                let cfg = ssr_engine::init::k_distant(
                    n,
                    k,
                    ssr_engine::init::DuplicatePlacement::Random,
                    &mut rng,
                );
                let mut sim = JumpSimulation::new(&ring, cfg, seed).unwrap();
                black_box(sim.run_until_silent(u64::MAX).unwrap().interactions)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_stabilisation, bench_kdistant_recovery);
criterion_main!(benches);
