//! Criterion micro-benchmarks for the extension layers: scheduler
//! sampling throughput, fault-recovery cost, exhaustive model checking,
//! and the bootstrap resampler. These quantify the overhead the
//! extensions add on top of the core simulators.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use ssr_analysis::bootstrap::{median_ci, BootstrapOptions};
use ssr_analysis::modelcheck::verify_stability;
use ssr_core::{GenericRanking, RingOfTraps};
use ssr_engine::faults::recovery_after_faults;
use ssr_engine::rng::Xoshiro256;
use ssr_engine::schedule::{ClusteredScheduler, Scheduler, UniformScheduler, ZipfScheduler};

fn bench_schedulers(c: &mut Criterion) {
    let mut group = c.benchmark_group("scheduler_sampling");
    let n = 1024;
    group.bench_function("uniform", |b| {
        let mut sched = UniformScheduler::new(n);
        let mut rng = Xoshiro256::seed_from_u64(1);
        b.iter(|| std::hint::black_box(sched.next_pair(&mut rng)))
    });
    group.bench_function("zipf_1.0", |b| {
        let mut sched = ZipfScheduler::new(n, 1.0);
        let mut rng = Xoshiro256::seed_from_u64(2);
        b.iter(|| std::hint::black_box(sched.next_pair(&mut rng)))
    });
    group.bench_function("clustered_0.1", |b| {
        let mut sched = ClusteredScheduler::new(n, n / 2, 0.1);
        let mut rng = Xoshiro256::seed_from_u64(3);
        b.iter(|| std::hint::black_box(sched.next_pair(&mut rng)))
    });
    group.finish();
}

fn bench_fault_recovery(c: &mut Criterion) {
    let mut group = c.benchmark_group("fault_recovery");
    group.sample_size(20);
    let p = RingOfTraps::new(110);
    let mut seed = 0u64;
    group.bench_function("ring_n110_f4", |b| {
        b.iter(|| {
            seed += 1;
            recovery_after_faults(&p, 4, seed, u64::MAX).unwrap()
        })
    });
    group.finish();
}

fn bench_modelcheck(c: &mut Criterion) {
    let mut group = c.benchmark_group("modelcheck");
    group.sample_size(10);
    group.bench_function("generic_n6_full_space", |b| {
        let p = GenericRanking::new(6);
        b.iter(|| verify_stability(&p, 1_000_000).unwrap())
    });
    group.bench_function("ring_n8_full_space", |b| {
        let p = RingOfTraps::new(8);
        b.iter(|| verify_stability(&p, 1_000_000).unwrap())
    });
    group.finish();
}

fn bench_bootstrap(c: &mut Criterion) {
    let sample: Vec<f64> = (0..200).map(|i| (i as f64).sqrt()).collect();
    c.bench_function("bootstrap_median_ci_200x1000", |b| {
        b.iter_batched(
            || sample.clone(),
            |s| median_ci(&s, &BootstrapOptions::default()),
            BatchSize::SmallInput,
        )
    });
}

criterion_group!(
    benches,
    bench_schedulers,
    bench_fault_recovery,
    bench_modelcheck,
    bench_bootstrap
);
criterion_main!(benches);
