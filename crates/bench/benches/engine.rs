//! Criterion benches for the simulation substrate itself: raw interaction
//! throughput of the naive simulator vs the jump-chain simulator, RNG and
//! Fenwick-tree primitives, and topology construction costs.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use ssr_core::{GenericRanking, TreeRanking};
use ssr_engine::fenwick::Fenwick;
use ssr_engine::rng::Xoshiro256;
use ssr_engine::{JumpSimulation, Simulation};
use ssr_topology::{BalancedTree, CubicGraph};
use std::hint::black_box;

fn bench_naive_throughput(c: &mut Criterion) {
    let n = 1024;
    let p = GenericRanking::new(n);
    let mut group = c.benchmark_group("naive_simulator");
    group.throughput(Throughput::Elements(100_000));
    group.bench_function("interactions_ag_n1024", |b| {
        b.iter_batched(
            || Simulation::new(&p, vec![0; n], 7).unwrap(),
            |mut sim| {
                for _ in 0..100_000 {
                    black_box(sim.step());
                }
                sim
            },
            criterion::BatchSize::SmallInput,
        )
    });
    group.finish();
}

fn bench_jump_throughput(c: &mut Criterion) {
    let n = 1024;
    let p = GenericRanking::new(n);
    let mut group = c.benchmark_group("jump_simulator");
    group.throughput(Throughput::Elements(10_000));
    group.bench_function("productive_steps_ag_n1024", |b| {
        b.iter_batched(
            || JumpSimulation::new(&p, vec![0; n], 7).unwrap(),
            |mut sim| {
                for _ in 0..10_000 {
                    black_box(sim.step_productive());
                }
                sim
            },
            criterion::BatchSize::SmallInput,
        )
    });
    group.finish();
}

fn bench_primitives(c: &mut Criterion) {
    c.bench_function("rng_next_u64", |b| {
        let mut rng = Xoshiro256::seed_from_u64(1);
        b.iter(|| black_box(rng.next_u64()))
    });
    c.bench_function("rng_ordered_pair_n4096", |b| {
        let mut rng = Xoshiro256::seed_from_u64(2);
        b.iter(|| black_box(rng.ordered_pair(4096)))
    });
    c.bench_function("fenwick_set_sample_4096", |b| {
        let mut f = Fenwick::new(4096);
        for i in 0..4096 {
            f.set(i, (i as u64 % 7) + 1);
        }
        let mut rng = Xoshiro256::seed_from_u64(3);
        b.iter(|| {
            let t = rng.below(f.total());
            let i = f.sample(t);
            f.set(i, f.weight(i) ^ 1);
            black_box(i)
        })
    });
}

fn bench_construction(c: &mut Criterion) {
    c.bench_function("balanced_tree_n65536", |b| {
        b.iter(|| black_box(BalancedTree::new(65536)))
    });
    c.bench_function("routing_graph_v1024", |b| {
        b.iter(|| black_box(CubicGraph::routing_graph(1024)))
    });
    c.bench_function("tree_protocol_build_n16384", |b| {
        b.iter(|| black_box(TreeRanking::new(16384)))
    });
}

criterion_group!(
    benches,
    bench_naive_throughput,
    bench_jump_throughput,
    bench_primitives,
    bench_construction
);
criterion_main!(benches);
