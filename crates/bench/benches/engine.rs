//! Criterion benches for the simulation substrate itself: the three
//! engines head-to-head (naive vs jump vs count), raw RNG and
//! weighted-sampling primitives, and topology construction costs.
//!
//! Two engine comparisons are measured:
//!
//! * **throughput** — productive interactions per second on `A_G` far from
//!   silence (stacked start, fixed productive budget). This isolates the
//!   per-step cost model: naive pays per interaction, jump pays `O(log S)`
//!   per productive interaction, count amortises whole batches.
//! * **to-silence** — full stabilisation wall-clock at a size every engine
//!   can finish. The count engine's advantage grows with `n`; the
//!   recorded throughput numbers extrapolate it (productive steps on
//!   `A_G` scale as `Θ(n²)`, so wall-clock ratios carry to larger `n`).
//!
//! Results are written to `BENCH_engines.json` by the criterion shim.

// Audited: benchmark loop casts bounded f64 sizes to usize.
#![allow(clippy::cast_possible_truncation)]

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use ssr_core::{GenericRanking, LooseLeaderElection, TreeRanking};
use ssr_engine::engine::{make_engine, Engine, EngineKind};
use ssr_engine::fenwick::Fenwick;
use ssr_engine::rng::Xoshiro256;
use ssr_engine::{run_with_plan, CountSimulation, FaultPlan, JumpSimulation, Protocol, Simulation};
use ssr_topology::{BalancedTree, CubicGraph};
use std::hint::black_box;

/// Run any engine until at least `budget` productive interactions.
fn run_productive(engine: &mut dyn Engine, budget: u64) -> u64 {
    while engine.productive_interactions() < budget {
        if engine.advance().is_none() {
            break;
        }
    }
    engine.productive_interactions()
}

fn bench_engine_throughput(c: &mut Criterion) {
    // Far-from-silence regime: stacked A_G at a size where the batched
    // engine's multinomial splitting dominates.
    let n = 65_536;
    let p = GenericRanking::new(n);
    let budget = 2_000_000u64;
    let mut group = c.benchmark_group("engine_throughput_ag_n65536");
    group.throughput(Throughput::Elements(budget));
    group.sample_size(10);
    for kind in [EngineKind::Jump, EngineKind::Count] {
        group.bench_function(format!("{kind}_productive_2M"), |b| {
            b.iter_batched(
                || make_engine(kind, &p, vec![0; n], 7).unwrap(),
                |mut engine| black_box(run_productive(engine.as_mut(), budget)),
                criterion::BatchSize::SmallInput,
            )
        });
    }
    group.finish();

    // The tree protocol from a uniform start spends ~90% of its
    // productive steps in the extra–extra and rank–extra classes — the
    // regime the generalised per-class batching covers. This is the entry
    // the nightly regression gate watches for batching-coverage
    // regressions.
    let n = 65_536;
    let p = TreeRanking::new(n);
    let budget = 2_000_000u64;
    let mut group = c.benchmark_group("engine_throughput_tree_uniform_n65536");
    group.throughput(Throughput::Elements(budget));
    group.sample_size(10);
    for kind in [EngineKind::Jump, EngineKind::Count] {
        group.bench_function(format!("{kind}_productive_2M"), |b| {
            b.iter_batched(
                || {
                    let mut rng = Xoshiro256::seed_from_u64(11);
                    let cfg = ssr_engine::init::uniform_random(n, p.num_states(), &mut rng);
                    make_engine(kind, &p, cfg, 11).unwrap()
                },
                |mut engine| black_box(run_productive(engine.as_mut(), budget)),
                criterion::BatchSize::SmallInput,
            )
        });
    }
    group.finish();

    // The naive engine cannot touch n = 65536; measure its interaction
    // throughput at its own scale for the record.
    let n = 1024;
    let p = GenericRanking::new(n);
    let mut group = c.benchmark_group("naive_simulator");
    group.throughput(Throughput::Elements(100_000));
    group.bench_function("interactions_ag_n1024", |b| {
        b.iter_batched(
            || Simulation::new(&p, vec![0; n], 7).unwrap(),
            |mut sim| {
                for _ in 0..100_000 {
                    black_box(sim.step());
                }
                sim
            },
            criterion::BatchSize::SmallInput,
        )
    });
    group.finish();
}

fn bench_engines_to_silence(c: &mut Criterion) {
    // Stabilisation wall-clock, all three engines, at a size the naive
    // engine can still finish (A_G needs Θ(n³) raw interactions).
    let n = 256;
    let p = GenericRanking::new(n);
    let mut group = c.benchmark_group("to_silence_ag_n256");
    group.sample_size(10);
    for kind in EngineKind::ALL {
        group.bench_function(kind.name(), |b| {
            let mut seed = 0;
            b.iter(|| {
                seed += 1;
                let mut e = make_engine(kind, &p, vec![0; n], seed).unwrap();
                black_box(e.run_until_silent(u64::MAX).unwrap().interactions)
            })
        });
    }
    group.finish();

    // Jump vs count at a scale the naive engine cannot reach: the gap
    // here is what makes the exp_scale decades tractable.
    let n = 4096;
    let p = GenericRanking::new(n);
    let mut group = c.benchmark_group("to_silence_ag_n4096");
    group.sample_size(10);
    for kind in [EngineKind::Jump, EngineKind::Count] {
        group.bench_function(kind.name(), |b| {
            let mut seed = 0;
            b.iter(|| {
                seed += 1;
                let mut e = make_engine(kind, &p, vec![0; n], seed).unwrap();
                black_box(e.run_until_silent(u64::MAX).unwrap().interactions)
            })
        });
    }
    group.finish();

    // The tree protocol (the paper's O(n log n) headliner) through the
    // count engine at a size used by exp_scale.
    let n = 65_536;
    let p = TreeRanking::new(n);
    let mut group = c.benchmark_group("to_silence_tree_n65536");
    group.sample_size(10);
    for kind in [EngineKind::Jump, EngineKind::Count] {
        group.bench_function(kind.name(), |b| {
            let mut seed = 100;
            b.iter(|| {
                seed += 1;
                let mut e = make_engine(kind, &p, vec![0; n], seed).unwrap();
                black_box(e.run_until_silent(u64::MAX).unwrap().interactions)
            })
        });
    }
    group.finish();
}

fn bench_jump_throughput(c: &mut Criterion) {
    let n = 1024;
    let p = GenericRanking::new(n);
    let mut group = c.benchmark_group("jump_simulator");
    group.throughput(Throughput::Elements(10_000));
    group.bench_function("productive_steps_ag_n1024", |b| {
        b.iter_batched(
            || JumpSimulation::new(&p, vec![0; n], 7).unwrap(),
            |mut sim| {
                for _ in 0..10_000 {
                    black_box(sim.step_productive());
                }
                sim
            },
            criterion::BatchSize::SmallInput,
        )
    });
    group.finish();
}

fn bench_count_batching(c: &mut Criterion) {
    // Batched vs exact stepping within the count engine itself: the same
    // chain, with and without binomial-splitting batches.
    let n = 65_536;
    let p = GenericRanking::new(n);
    let budget = 1_000_000u64;
    let mut group = c.benchmark_group("count_batching_ag_n65536");
    group.throughput(Throughput::Elements(budget));
    group.sample_size(10);
    // `batched_pool_t2` runs the same trajectory with 2-thread per-class
    // splits on the persistent worker pool (bit-identical results; the
    // delta vs pool-off `batched` is pure wall-clock + dispatch cost).
    for (label, batching, threads) in [
        ("batched", true, 1),
        ("batched_pool_t2", true, 2),
        ("exact", false, 1),
    ] {
        group.bench_function(label, |b| {
            b.iter_batched(
                || {
                    CountSimulation::new(&p, vec![0; n], 7)
                        .unwrap()
                        .with_batching(batching)
                        .with_threads(threads)
                },
                |mut sim| {
                    while sim.productive_interactions() < budget
                        && sim.advance_chain().is_some()
                    {}
                    black_box(sim.productive_interactions())
                },
                criterion::BatchSize::SmallInput,
            )
        });
    }
    // The adversary hot path: the same batched chain driven through
    // `run_with_plan`, with batches clipped to the scheduled fault events
    // of a live plan (background corruption every ~budget/8 interactions
    // plus a mid-run burst) and every productive group folded into the
    // RecoveryTracker's availability ledger. The delta vs `batched` is
    // the price of event clipping plus occupancy tracking.
    group.bench_function("faulted_batched", |b| {
        let plan = FaultPlan::new()
            .burst_at(budget as u128 / 2, 64)
            .rate(8.0 / budget as f64);
        b.iter_batched(
            || CountSimulation::new(&p, vec![0; n], 7).unwrap(),
            |mut sim| {
                let out = run_with_plan(&mut sim, &plan, 99, budget);
                black_box(out.faults_injected)
            },
            criterion::BatchSize::SmallInput,
        )
    });
    group.finish();

    // The rule-heavy regime: loose leader election at n = 65536 declares
    // ~18.9k enumerated sparse pairs (τ = 136), the class the per-group
    // hierarchical batching targets. From the stacked all-zero-timer
    // start the occupied-pair count stays far below the declared count,
    // so the batched entries exercise the sparse split path from the
    // first quantum; `exact` pins the pre-batching fallback cost for the
    // before/after grid in EXPERIMENTS.md.
    let n = 65_536;
    let p = LooseLeaderElection::new(n);
    let budget = 1_000_000u64;
    let mut group = c.benchmark_group("count_batching_loose_n65536");
    group.throughput(Throughput::Elements(budget));
    group.sample_size(10);
    for (label, batching, threads) in [
        ("batched", true, 1),
        ("batched_pool_t2", true, 2),
        ("exact", false, 1),
    ] {
        group.bench_function(label, |b| {
            b.iter_batched(
                || {
                    CountSimulation::new(&p, vec![0; n], 7)
                        .unwrap()
                        .with_batching(batching)
                        .with_threads(threads)
                },
                |mut sim| {
                    while sim.productive_interactions() < budget
                        && sim.advance_chain().is_some()
                    {}
                    black_box(sim.productive_interactions())
                },
                criterion::BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

fn bench_primitives(c: &mut Criterion) {
    c.bench_function("rng_next_u64", |b| {
        let mut rng = Xoshiro256::seed_from_u64(1);
        b.iter(|| black_box(rng.next_u64()))
    });
    c.bench_function("rng_ordered_pair_n4096", |b| {
        let mut rng = Xoshiro256::seed_from_u64(2);
        b.iter(|| black_box(rng.ordered_pair(4096)))
    });
    c.bench_function("rng_binomial_large", |b| {
        let mut rng = Xoshiro256::seed_from_u64(4);
        b.iter(|| black_box(rng.binomial(1_000_000, 0.3)))
    });
    // The weight-state maintenance hot path under a rule-heavy schema:
    // moving one agent between two follower timer states of loose leader
    // election (τ = 136) re-weights every enumerated pair touching either
    // state (~2τ pairs each). Driven through the public fault-injection
    // path — each iteration is four `ClassState::update_count` calls (a
    // move and its inverse, keeping the configuration fixed).
    c.bench_function("class_update_count_loose_tau136", |b| {
        let n = 65_536usize;
        let p = LooseLeaderElection::new(n);
        let timers = p.timer_max() as usize + 1;
        let spread: Vec<u32> = (0..n).map(|i| (i % timers) as u32).collect();
        let mut sim = CountSimulation::new(&p, spread, 9).unwrap();
        b.iter(|| {
            sim.inject_fault(10, 20);
            sim.inject_fault(20, 10);
            black_box(sim.interactions())
        })
    });
    c.bench_function("fenwick_set_sample_4096", |b| {
        let mut f = Fenwick::new(4096);
        for i in 0..4096 {
            f.set(i, (i as u64 % 7) + 1);
        }
        let mut rng = Xoshiro256::seed_from_u64(3);
        b.iter(|| {
            let t = rng.below(f.total());
            let i = f.sample(t);
            f.set(i, f.weight(i) ^ 1);
            black_box(i)
        })
    });
}

fn bench_tree_geometry(c: &mut Criterion) {
    use ssr_topology::balanced_tree::MaterialisedTree;
    let mut group = c.benchmark_group("tree_geometry");
    // Implicit construction only iterates the level-size sequence —
    // measure it at a size no materialised build could touch (a
    // 2³⁰-node materialised tree would need ~28 GiB of arrays).
    group.bench_function("implicit_build_n2_30", |b| {
        b.iter(|| black_box(BalancedTree::new(1 << 30)))
    });
    group.bench_function("materialised_build_n65536", |b| {
        b.iter(|| black_box(MaterialisedTree::new(65536)))
    });
    // Query cost: the §5 hot-loop triple (kind, subtree size, parent) at
    // random nodes — O(log n) descents against the oracle's O(1) array
    // reads, the price paid for dropping the arrays entirely.
    let t = BalancedTree::new(1 << 30);
    let mut rng = Xoshiro256::seed_from_u64(5);
    group.bench_function("implicit_queries_n2_30", |b| {
        b.iter(|| {
            let p = rng.below(1 << 30) as usize;
            black_box((t.kind(p), t.subtree_size(p), t.parent(p)))
        })
    });
    let o = MaterialisedTree::new(65536);
    group.bench_function("materialised_queries_n65536", |b| {
        b.iter(|| {
            let p = rng.below(65536) as usize;
            black_box((o.kind(p), o.subtree_size(p), o.parent(p)))
        })
    });
    group.finish();
}

fn bench_service(c: &mut Criterion) {
    use ssr_engine::engine::EngineSnapshot;
    use ssr_engine::wire::SnapshotShape;
    use ssr_service::{
        CheckpointStore, JobInit, JobResult, JobSpec, JobStatusKind, ResultCache,
    };

    let dir = std::env::temp_dir().join(format!("ssr-bench-service-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let mut group = c.benchmark_group("service");
    group.sample_size(10);

    // Serving a re-submitted job from the result cache: key derivation
    // (schema hash + spec fingerprint) plus lookup and decode — the full
    // cost of a hit short of the spool's queue-file renames. Key
    // derivation dominates: the schema hash walks the protocol's
    // equal-rank diagonal once.
    let cache = ResultCache::open(&dir).unwrap();
    let mut spec = JobSpec::new("tree", 65_536, 7);
    spec.init = JobInit::Stacked;
    cache
        .put(
            spec.key().unwrap(),
            &JobResult {
                status: JobStatusKind::Silent,
                interactions: 1 << 32,
                interactions_wide: 1 << 32,
                productive: 1 << 20,
                parallel_time: 65_536.0,
                outcome: None,
            },
        )
        .unwrap();
    group.throughput(Throughput::Elements(1));
    group.bench_function("cache_hit", |b| {
        b.iter(|| black_box(cache.get(spec.key().unwrap()).unwrap()))
    });

    // One durable checkpoint cycle at n = 2²⁰ on the count engine:
    // snapshot → versioned wire encode → atomic store write → read back →
    // decode (checksum + shape checks) → restore. This is the per-cadence
    // overhead a checkpointed daemon job pays over a plain run.
    let n = 1 << 20;
    let p = TreeRanking::new(n);
    let shape = SnapshotShape::of(&p);
    let mut engine = make_engine(EngineKind::Count, &p, vec![0; n], 9).unwrap();
    for _ in 0..32 {
        engine.advance();
    }
    let store = CheckpointStore::open(dir.join("ckpt")).unwrap();
    let key = spec.key().unwrap();
    group.bench_function("checkpoint_roundtrip_n1048576", |b| {
        b.iter(|| {
            let blob = engine.snapshot().to_wire(shape);
            store.save(key, engine.interactions_wide(), &blob).unwrap();
            let (_, back) = store.latest(key).unwrap();
            let snapshot = EngineSnapshot::from_wire(&back, shape).unwrap();
            engine.restore(&snapshot);
            black_box(blob.len())
        })
    });
    group.finish();
}

fn bench_construction(c: &mut Criterion) {
    c.bench_function("balanced_tree_n65536", |b| {
        b.iter(|| black_box(BalancedTree::new(65536)))
    });
    c.bench_function("routing_graph_v1024", |b| {
        b.iter(|| black_box(CubicGraph::routing_graph(1024)))
    });
    c.bench_function("tree_protocol_build_n16384", |b| {
        b.iter(|| black_box(TreeRanking::new(16384)))
    });
}

criterion_group!(
    benches,
    bench_engine_throughput,
    bench_engines_to_silence,
    bench_jump_throughput,
    bench_count_batching,
    bench_primitives,
    bench_tree_geometry,
    bench_service,
    bench_construction
);
criterion_main!(benches);
