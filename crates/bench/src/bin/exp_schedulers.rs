//! ES — scheduler robustness (extension beyond the paper's model).
//!
//! All of the paper's time bounds assume the *uniform* random scheduler.
//! Correctness (stability + silence), however, only needs every ordered
//! pair to keep positive probability. This experiment perturbs the
//! scheduler and measures the damage:
//!
//! * Zipf-weighted agent selection (heterogeneous contact rates) with
//!   skew θ ∈ {0.5, 1.0};
//! * a two-community contact graph with cross-community probability
//!   ε ∈ {0.1, 0.01}.
//!
//! Every run still stabilises (success column), while the time inflates
//! smoothly with the skew — evidence that the protocols' correctness does
//! not secretly rely on uniformity, only their constants do.
//!
//! Run: `cargo run --release -p ssr-bench --bin exp_schedulers`

use ssr_analysis::{Summary, Table};
use ssr_bench::{print_header, trials, uniform_start};
use ssr_core::{GenericRanking, TreeRanking};
use ssr_engine::schedule::{ClusteredScheduler, Scheduler, UniformScheduler, ZipfScheduler};
use ssr_engine::{Protocol, Simulation};

/// Median parallel time to silence under a scheduler factory; returns
/// `(median, successes)`.
fn run_with<P, S, F>(
    p: &P,
    make_sched: F,
    n_trials: usize,
    base_seed: u64,
    cap: u64,
) -> (Option<f64>, usize)
where
    P: Protocol,
    S: Scheduler,
    F: Fn() -> S,
{
    let mut times = Vec::new();
    for t in 0..n_trials as u64 {
        let start = uniform_start(p, 40_000 + base_seed + t);
        let mut sim = Simulation::new(p, start, base_seed + t).unwrap();
        let mut sched = make_sched();
        if let Ok(rep) = sim.run_until_silent_scheduled(cap, &mut sched) {
            times.push(rep.parallel_time);
        }
    }
    let successes = times.len();
    let med = (!times.is_empty()).then(|| Summary::of(&times).median);
    (med, successes)
}

fn report<P: Protocol>(p: &P, n: usize, t: usize, cap: u64) {
    println!("\n[{} at n = {n}, uniform-random starts]", p.name());
    let mut table = Table::new(vec![
        "scheduler".into(),
        "median T".into(),
        "vs uniform".into(),
        "success".into(),
    ]);
    let (uni, uni_ok) = run_with(p, || UniformScheduler::new(n), t, 51_000, cap);
    let uni_med = uni.expect("uniform runs must stabilise");
    let mut rows: Vec<(String, Option<f64>, usize)> =
        vec![("uniform".into(), Some(uni_med), uni_ok)];
    for theta in [0.5, 1.0] {
        let (m, ok) = run_with(p, || ZipfScheduler::new(n, theta), t, 52_000, cap);
        rows.push((format!("zipf θ={theta}"), m, ok));
    }
    for eps in [0.1, 0.01] {
        let (m, ok) = run_with(p, || ClusteredScheduler::new(n, n / 2, eps), t, 53_000, cap);
        rows.push((format!("clustered ε={eps}"), m, ok));
    }
    for (name, med, ok) in rows {
        let (m, ratio) = match med {
            Some(m) => (format!("{m:.0}"), format!("{:.2}×", m / uni_med)),
            None => ("timeout".into(), "—".into()),
        };
        table.add_row(vec![name, m, ratio, format!("{ok}/{t}")]);
    }
    print!("{}", table.render());
}

fn main() {
    print_header(
        "ES: scheduler robustness",
        "stability holds for any positive-probability scheduler; only the \
         time constants degrade with skew",
    );
    let t = trials(8);
    let quick = ssr_bench::quick();

    let n_gen = if quick { 32 } else { 64 };
    let gen = GenericRanking::new(n_gen);
    report(&gen, n_gen, t, 4_000_000_000);

    let n_tree = if quick { 64 } else { 256 };
    let tree = TreeRanking::new(n_tree);
    report(&tree, n_tree, t, 4_000_000_000);

    println!(
        "\nevery scheduler keeps 100% success (stability is scheduler-\
         independent); the slowdown factors quantify how much of the \
         paper's time analysis leans on uniformity."
    );
}
