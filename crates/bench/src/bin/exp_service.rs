//! SV — simulation-as-a-service: queue, keyed cache, durable checkpoints.
//!
//! Exercises the `ssr-service` daemon end to end and records the two
//! numbers EXPERIMENTS.md's "Service" section tracks:
//!
//! 1. **Cache-hit service rate** — jobs/s for a re-submitted spec served
//!    entirely from the content-addressed result cache (key derivation +
//!    lookup + decode, zero engine interactions), against the engine-run
//!    cost of the same job for scale.
//! 2. **Checkpoint cost vs n** — wall-clock to serialise an
//!    [`EngineSnapshot`] to the versioned wire format and write it
//!    durably, and to read + decode + restore it, for count-engine tree
//!    jobs across `n`.
//!
//! Both modes also run the correctness drill CI watches under
//! `SSR_QUICK=1`: submit a small tree job twice (second completion must
//! be a cache hit), then kill a checkpointed job after its first
//! checkpoint and let a fresh daemon resume it to a result bit-identical
//! to an uninterrupted reference.
//!
//! Run: `cargo run --release -p ssr-bench --bin exp_service`

use ssr_bench::print_header;
use ssr_core::TreeRanking;
use ssr_engine::engine::make_engine;
use ssr_engine::wire::SnapshotShape;
use ssr_engine::EngineKind;
use ssr_service::daemon::{job_result, job_status};
use ssr_service::{
    run_job, submit_job, CheckpointStore, Daemon, DaemonConfig, JobInit, JobSpec, JobStatus,
    ResultCache, RunConfig, RunDisposition,
};
use std::path::PathBuf;
use std::time::Instant;

fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "ssr-exp-service-{}-{name}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// The drill job: tree ranking, stacked start, count engine via `Auto`.
fn tree_job(n: usize, seed: u64) -> JobSpec {
    let mut spec = JobSpec::new("tree", n, seed);
    spec.init = JobInit::Stacked;
    spec
}

fn drain(dir: &std::path::Path, cfg_tweak: impl FnOnce(&mut DaemonConfig)) -> ssr_service::DaemonStats {
    let mut cfg = DaemonConfig::new(dir.to_path_buf());
    cfg_tweak(&mut cfg);
    Daemon::new(cfg).unwrap().run().unwrap()
}

/// The CI smoke: engine run → cache hit → kill/resume, all asserted.
fn correctness_drill(n: usize) {
    println!("\n[queue/cache/checkpoint drill, tree n = {n}]");
    let dir = temp_dir("drill");

    // 1. First submission runs on the engine.
    let key = submit_job(&dir, &tree_job(n, 42)).unwrap();
    let stats = drain(&dir, |_| {});
    assert_eq!(stats.completed, 1, "first drain must complete the job");
    assert_eq!(stats.cache_hits, 0);
    let JobStatus::Done { source } = job_status(&dir, key) else {
        panic!("job not done after drain");
    };
    assert_eq!(source, "engine");
    let first = job_result(&dir, key).unwrap();
    println!(
        "  engine run: {} interactions, parallel time {:.1}",
        first.interactions, first.parallel_time
    );

    // 2. Identical spec re-submitted (different requested thread budget —
    //    threads are not part of the key) is served from the cache.
    let mut resubmit = tree_job(n, 42);
    resubmit.threads = 4;
    assert_eq!(submit_job(&dir, &resubmit).unwrap(), key);
    let stats = drain(&dir, |_| {});
    assert_eq!(stats.completed, 1);
    assert_eq!(stats.cache_hits, 1, "resubmission must hit the cache");
    let JobStatus::Done { source } = job_status(&dir, key) else {
        panic!("resubmitted job not done");
    };
    assert_eq!(source, "cache");
    assert_eq!(job_result(&dir, key).unwrap(), first);
    println!("  resubmission served from cache (zero engine interactions)");

    // 3. Kill/resume: a daemon configured to die after the first
    //    checkpoint leaves the job pending with durable state; a fresh
    //    daemon resumes it to a bit-identical result.
    let kill_key = submit_job(&dir, &tree_job(n, 43)).unwrap();
    let stats = drain(&dir, |c| {
        c.checkpoint_every = 50_000;
        c.kill_after_checkpoints = Some(1);
    });
    assert_eq!(stats.interrupted, 1, "job must be interrupted mid-run");
    assert_eq!(job_status(&dir, kill_key), JobStatus::Pending);
    let stats = drain(&dir, |c| c.checkpoint_every = 50_000);
    assert_eq!(stats.completed, 1);
    assert_eq!(stats.resumed, 1, "successor must resume from checkpoint");
    assert_eq!(stats.cache_hits, 0);
    let resumed = job_result(&dir, kill_key).unwrap();

    // Uninterrupted reference in a separate spool.
    let ref_store = CheckpointStore::open(temp_dir("drill-ref")).unwrap();
    let reference = match run_job(
        &tree_job(n, 43),
        &ref_store,
        &RunConfig {
            threads: 1,
            checkpoint_every: 0,
            interrupt_after: None,
        },
    )
    .unwrap()
    {
        RunDisposition::Completed { result, .. } => result,
        other => panic!("reference did not complete: {other:?}"),
    };
    assert_eq!(resumed, reference, "resumed run must be bit-identical");
    assert_eq!(
        resumed.parallel_time.to_bits(),
        reference.parallel_time.to_bits()
    );
    println!("  kill/resume: resumed result bit-identical to reference");
    println!("VERDICT service drill: engine run, cache hit, kill/resume all exact → PASS");
}

/// Cache-hit service rate: jobs/s through submit → schedule → cache →
/// done, measured over whole daemon drain cycles.
fn measure_cache_rate(n: usize, rounds: usize) {
    println!("\n[cache-hit service rate, tree n = {n}]");
    let dir = temp_dir("rate");
    let spec = tree_job(n, 7);

    let start = Instant::now();
    submit_job(&dir, &spec).unwrap();
    drain(&dir, |_| {});
    let miss = start.elapsed();

    let start = Instant::now();
    for _ in 0..rounds {
        let key = submit_job(&dir, &spec).unwrap();
        let stats = drain(&dir, |_| {});
        assert_eq!(stats.cache_hits, 1);
        assert!(matches!(job_status(&dir, key), JobStatus::Done { .. }));
    }
    let hit = start.elapsed().as_secs_f64() / rounds as f64;
    println!(
        "  cold (engine) job: {:.1} ms;  cached job: {:.2} ms  →  {:.0} jobs/s, speed-up {:.0}x",
        miss.as_secs_f64() * 1e3,
        hit * 1e3,
        1.0 / hit,
        miss.as_secs_f64() / hit
    );

    // Key derivation + cache lookup alone (what the `service/cache_hit`
    // micro-bench gates), without the spool's file-system queue cycle.
    let cache = ResultCache::open(dir.join("cache")).unwrap();
    let key = spec.key().unwrap();
    let iters = 10_000;
    let start = Instant::now();
    for _ in 0..iters {
        assert!(cache.get(spec.key().unwrap()).is_some());
    }
    let per = start.elapsed().as_secs_f64() / iters as f64;
    let _ = key;
    println!(
        "  key + lookup only: {:.1} µs  →  {:.0} lookups/s",
        per * 1e6,
        1.0 / per
    );
}

/// Checkpoint write/restore wall-clock vs n for mid-run count engines.
fn measure_checkpoint_cost(sizes: &[usize]) {
    println!("\n[checkpoint write/restore cost vs n, count engine, tree]");
    println!("  {:>10}  {:>12}  {:>12}  {:>12}", "n", "blob", "write", "restore");
    for &n in sizes {
        let p = TreeRanking::new(n);
        let shape = SnapshotShape::of(&p);
        let mut engine = make_engine(EngineKind::Count, &p, vec![0; n], 9).unwrap();
        for _ in 0..64 {
            engine.advance();
        }
        let store = CheckpointStore::open(temp_dir(&format!("ckpt-{n}"))).unwrap();
        let key = tree_job(n, 9).key().unwrap();

        let start = Instant::now();
        let blob = engine.snapshot().to_wire(shape);
        store.save(key, engine.interactions_wide(), &blob).unwrap();
        let write = start.elapsed();

        let start = Instant::now();
        let (_, read_back) = store.latest(key).unwrap();
        let snapshot = ssr_engine::EngineSnapshot::from_wire(&read_back, shape).unwrap();
        engine.restore(&snapshot);
        let restore = start.elapsed();

        println!(
            "  {n:>10}  {:>9} KiB  {:>9.2} ms  {:>9.2} ms",
            blob.len() / 1024,
            write.as_secs_f64() * 1e3,
            restore.as_secs_f64() * 1e3
        );
    }
}

fn main() {
    print_header(
        "SV: simulation-as-a-service (queue, cache, durable checkpoints)",
        "identical re-submissions are cache hits; killed jobs resume from \
         the latest checkpoint to bit-identical results",
    );
    let quick = ssr_bench::quick();
    if quick {
        correctness_drill(16_384);
        measure_cache_rate(16_384, 5);
        measure_checkpoint_cost(&[1 << 14, 1 << 16]);
    } else {
        correctness_drill(65_536);
        measure_cache_rate(65_536, 20);
        measure_checkpoint_cost(&[1 << 14, 1 << 16, 1 << 18, 1 << 20]);
    }
    println!("\ndone.");
}
