//! F1/F2 — the paper's two construction figures, regenerated.
//!
//! Figure 1: the cubic routing graph `G` for `m² = 16` lines (adjacency,
//! 3-regularity, connectivity, diameter vs the `4⌈log m⌉` bound).
//!
//! Figure 2: the perfectly balanced binary tree of ranks for `n = 9`
//! (pre-order state distribution, drawn as ASCII), plus the height bound
//! `h ≤ 2 log n` across a range of sizes.

//!
//! Run: `cargo run --release -p ssr-bench --bin exp_figures`

// Audited: `⌈log₂ m⌉ as u32` on tiny diameter bounds (m ≤ 1024).
#![allow(clippy::cast_possible_truncation)]

use ssr_bench::print_header;
use ssr_topology::{BalancedTree, CubicGraph, NodeKind};

fn draw_tree(t: &BalancedTree, p: usize, prefix: &str, last: bool, out: &mut String) {
    let kind = match t.kind(p) {
        NodeKind::Branching => "branching",
        NodeKind::NonBranching => "non-branching",
        NodeKind::Leaf => "leaf",
    };
    out.push_str(prefix);
    out.push_str(if last { "└─ " } else { "├─ " });
    out.push_str(&format!("{p} ({kind})\n"));
    let children: Vec<usize> = [t.children(p).0, t.children(p).1]
        .into_iter()
        .flatten()
        .collect();
    let child_prefix = format!("{prefix}{}", if last { "   " } else { "│  " });
    for (i, &c) in children.iter().enumerate() {
        draw_tree(t, c, &child_prefix, i + 1 == children.len(), out);
    }
}

fn main() {
    print_header(
        "F1: routing graph G (Figure 1, m² = 16)",
        "cubic graph from a balanced binary tree, root merged with a leaf, \
         cycle through remaining leaves; diameter ≤ 4⌈log m⌉",
    );
    let g = CubicGraph::routing_graph(16);
    println!("adjacency (1-based, as in Figure 1):");
    print!("{}", g.render_adjacency());
    println!("3-regular: {}", g.is_three_regular());
    println!("connected:  {}", g.is_connected());
    let m = 4.0f64;
    println!(
        "diameter:   {} (bound 4⌈log₂ m⌉ = {})",
        g.diameter(),
        4 * m.log2().ceil() as u32
    );
    for v in [36usize, 64, 144, 1024] {
        let g = CubicGraph::routing_graph(v);
        println!(
            "m² = {v:>5}: cubic = {}, diameter = {:>2}, bound = {}",
            g.is_three_regular(),
            g.diameter(),
            4 * ((v as f64).sqrt().log2().ceil() as u32).max(1) + 2
        );
    }

    println!();
    print_header(
        "F2: perfectly balanced tree of ranks (Figure 2, n = 9)",
        "pre-order numbering; all nodes at a level share a kind; h ≤ 2 log n",
    );
    let t = BalancedTree::new(9);
    let mut out = String::new();
    draw_tree(&t, 0, "", true, &mut out);
    print!("{out}");
    println!(
        "figure check: children(0) = {:?} (paper: 1 and 5), \
         children(2) = {:?} (paper: 3 and 4)",
        t.children(0),
        t.children(2)
    );
    println!("\nheight vs bound:");
    for n in [9usize, 100, 1000, 65536, 1_000_000] {
        let t = BalancedTree::new(n);
        t.validate().expect("tree invariants");
        println!(
            "n = {n:>8}: height {:>3}  ≤  2·log₂ n = {:>6.1}",
            t.height(),
            2.0 * (n as f64).log2()
        );
    }
}
