//! Throughput-regression gate over the criterion results.
//!
//! Compares `BENCH_engines.json` (produced by `cargo bench -p ssr-bench
//! --bench engines`) against the checked-in `BENCH_engines.baseline.json`
//! and **fails (exit 1) when any productive-step throughput entry drops by
//! more than 2×**. Mean-time entries are reported for context but do not
//! gate.
//!
//! Raw throughput is machine-dependent and the baseline may have been
//! recorded on different hardware (a developer laptop vs a shared CI
//! runner), so when both files contain the calibration entry
//! ([`CALIBRATION_ID`] — a single-threaded, allocation-free workload
//! whose speed tracks raw core performance) every gated throughput is
//! first divided by its run's calibration throughput. The gate then
//! compares *machine-normalised* numbers, so a uniformly slower runner
//! does not trip it — only a genuine relative regression does.
//!
//! Usage: `bench_gate [current.json] [baseline.json]` — defaults to
//! `BENCH_engines.json` and `BENCH_engines.baseline.json` in the working
//! directory. Regenerate the baseline with
//! `cargo bench -p ssr-bench --bench engines && cp BENCH_engines.json
//! BENCH_engines.baseline.json`.

use std::collections::BTreeMap;
use std::process::ExitCode;

/// Allowed slow-down factor before the gate trips.
const MAX_REGRESSION: f64 = 2.0;

/// Entry used to normalise out raw machine speed before comparing runs
/// from (possibly) different hardware.
const CALIBRATION_ID: &str = "jump_simulator/productive_steps_ag_n1024";

#[derive(Debug, Clone, Copy)]
struct Entry {
    mean_ns: f64,
    elements_per_sec: Option<f64>,
}

/// Extract a numeric field `"key": value` from one JSON-object line
/// (the criterion shim writes one flat object per line — no nesting, so
/// line-oriented extraction is exact for this format).
fn field(line: &str, key: &str) -> Option<f64> {
    let pat = format!("\"{key}\": ");
    let start = line.find(&pat)? + pat.len();
    let rest = &line[start..];
    let end = rest
        .find(|c: char| c != '-' && c != '.' && !c.is_ascii_digit())
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

fn field_str<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let pat = format!("\"{key}\": \"");
    let start = line.find(&pat)? + pat.len();
    let rest = &line[start..];
    Some(&rest[..rest.find('"')?])
}

fn parse(path: &str) -> Result<BTreeMap<String, Entry>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let mut out = BTreeMap::new();
    for line in text.lines() {
        let Some(id) = field_str(line, "id") else {
            continue;
        };
        let Some(mean_ns) = field(line, "mean_ns") else {
            continue;
        };
        out.insert(
            id.to_string(),
            Entry {
                mean_ns,
                elements_per_sec: field(line, "elements_per_sec"),
            },
        );
    }
    if out.is_empty() {
        return Err(format!("{path}: no benchmark entries found"));
    }
    Ok(out)
}

/// Outcome of comparing one fresh run against one baseline.
#[derive(Debug, Default, PartialEq)]
struct GateReport {
    /// Entries whose machine-normalised throughput dropped beyond
    /// [`MAX_REGRESSION`] — the only thing that fails the gate.
    regressions: usize,
    /// Throughput entries actually compared.
    gated: usize,
    /// Per-key mismatches that cannot gate (baseline key absent from the
    /// fresh run, no calibration, nothing comparable at all). Reported
    /// loudly, never fatal: a renamed bench or a trimmed baseline must
    /// not paint CI red.
    warnings: usize,
}

fn run_gate(current: &BTreeMap<String, Entry>, baseline: &BTreeMap<String, Entry>) -> GateReport {
    // Normalise out raw machine speed when the calibration entry exists
    // in both runs (the baseline may come from different hardware).
    let calibration = match (
        baseline.get(CALIBRATION_ID).and_then(|e| e.elements_per_sec),
        current.get(CALIBRATION_ID).and_then(|e| e.elements_per_sec),
    ) {
        (Some(b), Some(c)) if b > 0.0 && c > 0.0 => Some((b, c)),
        _ => None,
    };
    let mut report = GateReport::default();
    println!(
        "bench_gate: gate >{MAX_REGRESSION}× throughput drop, {}",
        match calibration {
            Some((b, c)) => format!(
                "machine-normalised via {CALIBRATION_ID}: current runs at {:.2}× baseline speed",
                c / b
            ),
            None => {
                report.warnings += 1;
                format!(
                    "WARNING: calibration entry '{CALIBRATION_ID}' missing in one file — \
                     comparing raw numbers"
                )
            }
        }
    );
    for (id, base) in baseline {
        let Some(cur) = current.get(id) else {
            println!(
                "  WARNING  {id}: present in baseline, absent in current run (not gated — \
                 regenerate the baseline if this bench was removed or renamed)"
            );
            report.warnings += 1;
            continue;
        };
        if id == CALIBRATION_ID && calibration.is_some() {
            continue; // the yardstick cannot gate itself
        }
        match (base.elements_per_sec, cur.elements_per_sec) {
            (Some(b), Some(c)) if b > 0.0 => {
                report.gated += 1;
                let (b, c) = match calibration {
                    Some((cal_b, cal_c)) => (b / cal_b, c / cal_c),
                    None => (b, c),
                };
                let ratio = c / b;
                let verdict = if ratio * MAX_REGRESSION < 1.0 {
                    report.regressions += 1;
                    "REGRESSED"
                } else {
                    "ok"
                };
                println!(
                    "  {verdict:>9}  {id}: {c:.3e} vs baseline {b:.3e} ({ratio:.2}×)"
                );
            }
            _ => {
                // Time-only entry: informational.
                let ratio = base.mean_ns / cur.mean_ns;
                println!(
                    "  {:>9}  {id}: {:.3e} ns vs baseline {:.3e} ns ({ratio:.2}× speed)",
                    "info", cur.mean_ns, base.mean_ns
                );
            }
        }
    }
    for id in current.keys() {
        if !baseline.contains_key(id) {
            println!("  {:>9}  {id}: new entry (no baseline)", "new");
        }
    }
    if report.gated == 0 {
        println!(
            "  WARNING  no throughput entries were comparable — nothing gated \
             (regenerate the baseline)"
        );
        report.warnings += 1;
    }
    report
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let current_path = args.first().map_or("BENCH_engines.json", |s| s.as_str());
    let baseline_path = args
        .get(1)
        .map_or("BENCH_engines.baseline.json", |s| s.as_str());

    // The fresh run must exist — a failed bench step is a real error. A
    // *missing* baseline file only means there is nothing to gate against
    // yet (first run on a new branch, deliberately cleared baseline):
    // warn and pass. A baseline that exists but does not parse is NOT a
    // pass — a typo'd path passes the missing-file check above it, but a
    // corrupted checked-in baseline must not silently disable the gate.
    let current = match parse(current_path) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("bench_gate: {e}");
            return ExitCode::FAILURE;
        }
    };
    if !std::path::Path::new(baseline_path).exists() {
        eprintln!(
            "bench_gate: WARNING: {baseline_path} does not exist — no baseline to gate \
             against, passing"
        );
        return ExitCode::SUCCESS;
    }
    let baseline = match parse(baseline_path) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("bench_gate: baseline exists but is unusable: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!("bench_gate: {current_path} vs {baseline_path}");
    let report = run_gate(&current, &baseline);
    if report.regressions > 0 {
        eprintln!(
            "bench_gate: {} regression(s) beyond {MAX_REGRESSION}×",
            report.regressions
        );
        return ExitCode::FAILURE;
    }
    if report.warnings > 0 {
        println!(
            "bench_gate: {} warning(s), {} throughput entries within {MAX_REGRESSION}×",
            report.warnings, report.gated
        );
    } else {
        println!(
            "bench_gate: all {} throughput entries within {MAX_REGRESSION}×",
            report.gated
        );
    }
    ExitCode::SUCCESS
}

#[cfg(test)]
mod tests {
    use super::*;

    const LINE: &str = r#"  {"id": "g/count", "mean_ns": 2718289.0, "min_ns": 1.0, "max_ns": 2.0, "samples": 10, "iters_per_sample": 2, "elements_per_sec": 735756941.2},"#;

    #[test]
    fn extracts_fields_from_shim_lines() {
        assert_eq!(field_str(LINE, "id"), Some("g/count"));
        assert_eq!(field(LINE, "mean_ns"), Some(2_718_289.0));
        assert_eq!(field(LINE, "elements_per_sec"), Some(735_756_941.2));
        assert_eq!(field(LINE, "absent"), None);
    }

    #[test]
    fn missing_file_is_an_error() {
        assert!(parse("/nonexistent/BENCH.json").is_err());
    }

    fn entry(tp: Option<f64>) -> Entry {
        Entry {
            mean_ns: 100.0,
            elements_per_sec: tp,
        }
    }

    fn map(entries: &[(&str, Option<f64>)]) -> BTreeMap<String, Entry> {
        entries
            .iter()
            .map(|&(id, tp)| (id.to_string(), entry(tp)))
            .collect()
    }

    /// A baseline key absent from the fresh run degrades to a warning —
    /// renamed or removed benches must not fail the gate.
    #[test]
    fn missing_bench_key_warns_without_regressing() {
        let baseline = map(&[("a/tp", Some(100.0)), ("gone/tp", Some(50.0))]);
        let current = map(&[("a/tp", Some(90.0))]);
        let report = run_gate(&current, &baseline);
        assert_eq!(report.regressions, 0);
        assert_eq!(report.gated, 1);
        // Two warnings: the missing key and the missing calibration entry.
        assert_eq!(report.warnings, 2);
    }

    /// A missing calibration entry falls back to raw comparison (one
    /// warning), still gating genuine regressions.
    #[test]
    fn missing_calibration_still_gates_raw() {
        let baseline = map(&[("a/tp", Some(100.0)), ("b/tp", Some(100.0))]);
        let current = map(&[("a/tp", Some(10.0)), ("b/tp", Some(95.0))]);
        let report = run_gate(&current, &baseline);
        assert_eq!(report.regressions, 1, "10x raw drop must gate");
        assert_eq!(report.gated, 2);
        assert_eq!(report.warnings, 1);
    }

    /// With the calibration entry present in both files, a uniformly
    /// slower machine does not trip the gate.
    #[test]
    fn calibrated_uniform_slowdown_passes() {
        let baseline = map(&[(CALIBRATION_ID, Some(1000.0)), ("a/tp", Some(100.0))]);
        let current = map(&[(CALIBRATION_ID, Some(250.0)), ("a/tp", Some(25.0))]);
        let report = run_gate(&current, &baseline);
        assert_eq!(report.regressions, 0);
        assert_eq!(report.warnings, 0);
    }

    /// Nothing comparable at all: warn, never regress.
    #[test]
    fn no_comparable_entries_warns() {
        let baseline = map(&[("time_only", None)]);
        let current = map(&[("time_only", None)]);
        let report = run_gate(&current, &baseline);
        assert_eq!(report.regressions, 0);
        assert_eq!(report.gated, 0);
        assert!(report.warnings >= 1);
    }
}
