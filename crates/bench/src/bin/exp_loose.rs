//! EL — loose stabilisation vs the paper's silent protocols (extension).
//!
//! The lower bound of [Cai–Izumi–Wada] forces ≥ n states for *silent*
//! self-stabilising leader election; the loose-stabilisation line of work
//! (related work [45], [17]) escapes it with `O(log n)` states by holding
//! the elected leader only temporarily. This experiment quantifies the
//! trade-off with the timer-based loose protocol in `ssr-core::loose`:
//!
//! 1. convergence: parallel time until exactly one leader, from
//!    adversarial starts (all leaders / no leaders / uniform random);
//! 2. holding: parallel time until the unique leader is disturbed
//!    (a spurious second leader rises), as a function of the timer
//!    ceiling τ — growth should be drastic (roughly exponential in τ);
//! 3. the contrast: the paper's tree protocol needs `O(log n)` *extra*
//!    states on top of `n` ranks but then holds the leader forever.
//!
//! Run: `cargo run --release -p ssr-bench --bin exp_loose`

use std::time::Instant;

use ssr_analysis::{Summary, Table};
use ssr_bench::{print_header, trials};
use ssr_core::LooseLeaderElection;
use ssr_engine::observer::NullObserver;
use ssr_engine::rng::Xoshiro256;
use ssr_engine::{init, CountSimulation, Protocol, Simulation, State};

/// Parallel time until the population first has exactly one leader.
fn convergence_time(p: &LooseLeaderElection, start: Vec<State>, seed: u64, cap: u64) -> f64 {
    let mut sim = Simulation::new(p, start, seed).unwrap();
    loop {
        if p.leader_count(sim.counts()) == 1 {
            return sim.parallel_time();
        }
        assert!(sim.interactions() < cap, "no convergence within cap");
        sim.run_for(64, &mut NullObserver);
    }
}

/// Drive the count engine through `budget` interactions of the loose
/// protocol from the all-`F(0)` stacked start; returns wall-clock millis,
/// advance quanta consumed, and the interaction clock actually reached.
fn count_drive(
    p: &LooseLeaderElection,
    budget: u64,
    seed: u64,
    batching: bool,
    threads: usize,
) -> (f64, u64, u64) {
    let n = p.population_size();
    let mut sim = CountSimulation::new(p, vec![0; n], seed)
        .unwrap()
        .with_batching(batching)
        .with_threads(threads);
    let start = Instant::now();
    let mut quanta = 0u64;
    while sim.interactions() < budget {
        if sim.advance_chain().is_none() {
            break;
        }
        quanta += 1;
    }
    let ms = start.elapsed().as_secs_f64() * 1e3;
    (ms, quanta, sim.interactions())
}

/// Parallel time from a converged configuration (one leader, all timers
/// full) until the leader count first deviates from one. `None` when the
/// leader survives the whole budget.
fn holding_time(p: &LooseLeaderElection, seed: u64, budget: u64) -> Option<f64> {
    let n = p.population_size();
    let mut start = vec![p.timer_max(); n];
    start[0] = p.leader_state();
    let mut sim = Simulation::new(p, start, seed).unwrap();
    while sim.interactions() < budget {
        sim.run_for(64, &mut NullObserver);
        if p.leader_count(sim.counts()) != 1 {
            return Some(sim.parallel_time());
        }
    }
    None
}

fn main() {
    print_header(
        "EL: loose stabilisation trade-off",
        "O(log n) states elect fast but hold the leader only ~exp(τ) time; \
         the paper's silent protocols hold forever at the cost of ≥ n states",
    );
    let t = trials(10);

    // (1) Convergence from adversarial starts.
    let ns: &[usize] = if ssr_bench::quick() {
        &[32, 64]
    } else {
        &[32, 64, 128, 256, 512]
    };
    println!("\n[convergence to a unique leader, default τ = 8⌈log₂ n⌉]");
    let mut table = Table::new(vec![
        "n".into(),
        "all-leaders".into(),
        "no-leaders".into(),
        "uniform".into(),
    ]);
    for &n in ns {
        let p = LooseLeaderElection::new(n);
        let cap = 2_000_000u64.saturating_mul(n as u64);
        let med = |mk: &dyn Fn(u64) -> Vec<State>| -> f64 {
            let times: Vec<f64> = (0..t as u64)
                .map(|s| convergence_time(&p, mk(s), 21_000 + s, cap))
                .collect();
            Summary::of(&times).median
        };
        let all_leaders = med(&|_| vec![p.leader_state(); n]);
        let no_leaders = med(&|_| vec![p.timer_max(); n]);
        let uniform = med(&|s| {
            let mut rng = Xoshiro256::seed_from_u64(777 ^ s);
            init::uniform_random(n, p.num_states(), &mut rng)
        });
        table.add_row(vec![
            n.to_string(),
            format!("{all_leaders:.0}"),
            format!("{no_leaders:.0}"),
            format!("{uniform:.0}"),
        ]);
    }
    print!("{}", table.render());
    println!("convergence stays low-polynomial in n — loose election is fast.");

    // (2) Holding time vs timer ceiling.
    let n = 64usize;
    let budget = if ssr_bench::quick() {
        20_000_000
    } else {
        200_000_000
    };
    println!("\n[holding time at n = {n} vs timer ceiling τ (budget {budget} interactions)]");
    let mut table = Table::new(vec![
        "τ".into(),
        "median hold".into(),
        "max hold".into(),
        "survived budget".into(),
    ]);
    let taus: &[u32] = if ssr_bench::quick() {
        &[2, 4, 8]
    } else {
        &[2, 4, 8, 16, 24]
    };
    for &tau in taus {
        let p = LooseLeaderElection::with_timer(n, tau);
        let mut holds = Vec::new();
        let mut survived = 0usize;
        for s in 0..t as u64 {
            match holding_time(&p, 31_000 + s, budget) {
                Some(h) => holds.push(h),
                None => survived += 1,
            }
        }
        let (med, max) = if holds.is_empty() {
            ("> budget".to_string(), "> budget".to_string())
        } else {
            let s = Summary::of(&holds);
            (format!("{:.0}", s.median), format!("{:.0}", s.max))
        };
        table.add_row(vec![
            tau.to_string(),
            med,
            max,
            format!("{survived}/{t}"),
        ]);
    }
    print!("{}", table.render());
    println!(
        "holding time explodes with τ (≈ exponentially): loose stabilisation \
         buys state efficiency with a finite—but tunable—leadership lease.\n\
         The paper's silent tree protocol (x = O(log n) EXTRA states on top \
         of n ranks) holds its leader indefinitely: silence is absorbing."
    );

    // (3) Count-engine sparse batching: the loose protocol's rules fit
    // none of the structured classes, so beyond the diagonal everything
    // goes through the enumerated sparse pairs — the path the hierarchical
    // two-level batching (per-state groups, per-pair drift caps,
    // occupied-pair threshold) exists for. This grid doubles as the CI
    // smoke test of that path under SSR_QUICK=1.
    let ns: &[usize] = if ssr_bench::quick() {
        &[4096, 16384]
    } else {
        &[4096, 16384, 65536]
    };
    println!("\n[count engine on the sparse-pair path: exact chain vs batched, stacked start]");
    let mut table = Table::new(vec![
        "n".into(),
        "budget".into(),
        "exact ms".into(),
        "batched ms".into(),
        "batched t2 ms".into(),
        "speedup".into(),
        "ints/quantum".into(),
    ]);
    for &n in ns {
        let p = LooseLeaderElection::new(n);
        let budget = 1_000_000u64;
        let (exact_ms, exact_q, _) = count_drive(&p, budget, 91, false, 1);
        let (batched_ms, batched_q, reached) = count_drive(&p, budget, 91, true, 1);
        let (pool_ms, _, _) = count_drive(&p, budget, 91, true, 2);
        assert!(
            batched_q < exact_q,
            "batching must consume fewer advance quanta than the exact chain"
        );
        table.add_row(vec![
            n.to_string(),
            budget.to_string(),
            format!("{exact_ms:.1}"),
            format!("{batched_ms:.1}"),
            format!("{pool_ms:.1}"),
            format!("{:.1}x", exact_ms / batched_ms),
            format!("{:.0}", reached as f64 / batched_q as f64),
        ]);
    }
    print!("{}", table.render());
    println!(
        "the two-level sparse hierarchy batches the loose protocol at sizes \
         where the flat bound fell back to exact stepping (old rein: \
         ~n/32 draws vs a ~τ² declared-pair threshold)."
    );
}
