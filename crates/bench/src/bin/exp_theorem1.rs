//! E1 — Theorem 1: the state-optimal ring of traps stabilises in
//! `O(min(k·n^{3/2}, n² log² n))` whp from any `k`-distant configuration.
//!
//! Three tables:
//!   (a) time vs distance `k` at fixed `n` — near-linear growth in `k`
//!       until the arbitrary-start cap takes over;
//!   (b) time vs `n` at fixed small `k` — exponent ≈ 3/2, i.e. `o(n²)`:
//!       the headline "state-optimal ranking in o(n²) for k = o(√n)";
//!   (c) time vs `n` from arbitrary (uniform-random) starts — exponent
//!       ≈ 2 (× polylog), matching the `n² log² n` branch, compared
//!       against the `A_G` baseline.
//!
//! Run: `cargo run --release -p ssr-bench --bin exp_theorem1`

// Audited: experiment grids cast small f64 population sizes (n <= 2^20) to usize/u32.
#![allow(clippy::cast_possible_truncation)]

use ssr_analysis::sweep::{sweep, SweepOptions};
use ssr_bench::{grid, print_header, report_sweep, trials, uniform_start, verdict};
use ssr_core::generic::GenericRanking;
use ssr_core::ring::RingOfTraps;
use ssr_engine::init::{self, DuplicatePlacement};
use ssr_engine::rng::Xoshiro256;
use ssr_engine::Protocol;

fn k_distant_start(p: &RingOfTraps, k: usize, seed: u64) -> Vec<u32> {
    let mut rng = Xoshiro256::seed_from_u64(seed);
    init::k_distant(
        p.population_size(),
        k,
        DuplicatePlacement::Random,
        &mut rng,
    )
}

fn main() {
    print_header(
        "E1: ring of traps (Theorem 1)",
        "state-optimal ranking in O(min(k·n^{3/2}, n² log² n)) whp",
    );
    let t = trials(15);

    // (a) fixed n, sweep k.
    let n_fixed = if ssr_bench::quick() { 240 } else { 506 }; // 22·23
    let ks = grid(
        &[1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 253.0],
        &[1.0, 4.0, 16.0, 64.0],
    );
    // The generic sweep varies the protocol, not the start distance, so
    // table (a) drives the trial runner directly.
    println!("\n[(a) ring, n = {n_fixed}: recovery time vs distance k]");
    let mut table = ssr_analysis::Table::new(vec![
        "k".into(),
        "mean".into(),
        "median".into(),
        "max".into(),
    ]);
    let mut meds = Vec::new();
    let p = RingOfTraps::new(n_fixed);
    for &kf in &ks {
        let k = kf as usize;
        let make = |seed| k_distant_start(&p, k, seed);
        let res = ssr_engine::Scenario::new(&p)
            .init(ssr_engine::Init::Custom(&make))
            .trials(t)
            .base_seed(300 + k as u64)
            .run();
        let s = ssr_analysis::Summary::of(&res.parallel_times());
        meds.push(s.median);
        table.add_row(vec![
            k.to_string(),
            format!("{:.0}", s.mean),
            format!("{:.0}", s.median),
            format!("{:.0}", s.max),
        ]);
    }
    print!("{}", table.render());
    let fit_k = ssr_analysis::fit_power_law(&ks, &meds);
    println!(
        "fit: T(k) ≈ {:.0}·k^{:.2} (R² = {:.3}) — Theorem 1 predicts slope ≤ 1 \
         (linear in k) flattening at the n²log²n cap",
        fit_k.constant, fit_k.exponent, fit_k.r_squared
    );

    // (b) fixed small k, sweep n: the o(n²) headline.
    let ns = grid(
        &[110.0, 240.0, 506.0, 1056.0, 2162.0],
        &[110.0, 240.0, 506.0],
    );
    let k_small = 4usize;
    let by_n = sweep(
        &ns,
        |x| RingOfTraps::new(x as usize),
        |p, seed| k_distant_start(p, k_small, seed),
        &SweepOptions::new(t).with_base_seed(400),
    );
    let e_b = report_sweep(
        &format!("(b) ring, k = {k_small}: time vs n (expect ≈ n^1.5, o(n²))"),
        "n",
        &by_n,
    );

    // (c) arbitrary starts: the n² log² n branch vs the A_G baseline.
    let ns_c = grid(&[110.0, 240.0, 506.0, 1056.0], &[110.0, 240.0]);
    let arb = sweep(
        &ns_c,
        |x| RingOfTraps::new(x as usize),
        uniform_start,
        &SweepOptions::new(t).with_base_seed(500),
    );
    let e_c = report_sweep("(c) ring from uniform-random starts", "n", &arb);
    let base = sweep(
        &ns_c,
        |x| GenericRanking::new(x as usize),
        uniform_start,
        &SweepOptions::new(t).with_base_seed(600),
    );
    let e_ag = report_sweep("(c') A_G from uniform-random starts (baseline)", "n", &base);

    println!();
    verdict("(b) k-distant exponent (theory 1.5)", e_b, 1.2, 1.8);
    verdict("(c) arbitrary-start exponent (theory ≤ 2 + polylog)", e_c, 1.6, 2.4);
    verdict("(c') A_G exponent (theory 2)", e_ag, 1.7, 2.3);
    println!(
        "shape check: ring from small-k starts must beat both arbitrary-start \
         curves by a growing factor; see EXPERIMENTS.md for the recorded run."
    );
}
