//! E3+ — large-scale confirmation of the `O(n log n)` tree protocol.
//!
//! The headline result (Theorem 3) is an asymptotic claim; the main E3
//! grid stops at `n = 16384`. The count engine batches **every**
//! interaction class of the tree protocol's schema — equal-rank dispersal,
//! the buffer epidemic (extra–extra), and the reset/re-enter cross class —
//! and splits each batch's per-class work across a **persistent worker
//! pool** (`SSR_THREADS`, results bit-identical per seed regardless),
//! with the weight state slimmed to block sums over derived leaves and
//! the tree geometry computed implicitly (a constant-size struct instead
//! of seven `O(n)` arrays). Together that pushes the grid to
//! **`n = 2³¹ ≈ 2.1·10⁹` agents in a single run**, with `n = 2³³` behind
//! `SSR_SCALE_MAX_LOG2` (quick mode stops at `n = 16384`); memory stays
//! `O(#states)` with ≈ `1.1n` bytes of weight-tree overhead beyond the
//! `4n`-byte counts — the printed per-component memory model breaks this
//! down per grid top.
//!
//! The smallest grid point is cross-checked against the exact jump engine;
//! both the raw exponent (should hover just above 1) and the log-corrected
//! model `T ≈ c·n·log n` are fitted, and wall-clock, productive
//! interactions and peak RSS are recorded per decade so regressions in
//! batching coverage or memory footprint are visible directly in this
//! table (recorded grids live in `EXPERIMENTS.md`).
//!
//! Run: `cargo run --release -p ssr-bench --bin exp_scale`
//! (full grid: the top point takes tens of minutes per trial; set
//! `SSR_QUICK=1` for a smoke run, `SSR_SCALE_MAX_LOG2=27` to cap the grid,
//! `SSR_THREADS=4` to parallelise each run's batch splits)

// Audited: experiment grids cast small f64 population sizes to usize/u32.
#![allow(clippy::cast_possible_truncation)]

use ssr_analysis::{fit_power_law, fit_power_law_with_polylog, Summary, Table};
use ssr_bench::{format_bytes, peak_rss_bytes, print_header, trials, verdict};
use ssr_core::TreeRanking;
use ssr_engine::{EngineKind, Init, Protocol, Scenario};

/// Above this `n`, only the uniform start is run (a stacked run costs the
/// same again and the uniform medians are what the fit consumes).
const STACKED_MAX_N: usize = 1 << 27;

/// Per-component model of the count engine's resident state for the tree
/// protocol, mirroring the engine's actual layout: occupancy counts
/// (4 B/state), two block-sum trees over derived weight leaves (one `u64`
/// per 64 rank states, heap layout padded to a power of two), the
/// equal-rank membership bitset, and the tree geometry. The geometry term
/// is the story of this experiment's scaling history: the original
/// materialised build stored seven `u32` arrays (≈ 28n bytes — more than
/// the counts themselves), PR 5 slimmed the weight state to ≈ 1.1n bytes
/// of block sums, and the implicit tree now answers every geometric query
/// from a constant-size struct.
fn print_memory_model(n: usize) {
    let p = TreeRanking::new(n);
    let states = Protocol::num_states(&p) as u64;
    let blocks = n.div_ceil(64).next_power_of_two() as u64;
    let counts = 4 * states;
    let block_trees = 2 * (2 * blocks * 8); // eq + rank_occ heap layouts
    let bitset = (n as u64).div_ceil(64) * 8;
    let geometry = std::mem::size_of_val(p.tree()) as u64;
    let materialised = 28 * n as u64;
    println!(
        "memory model at n = {n}: counts {} + weight block sums {} + eq bitset {} + \
         tree geometry {geometry} B (a materialised tree would add {}) ≈ {} resident",
        format_bytes(counts),
        format_bytes(block_trees),
        format_bytes(bitset),
        format_bytes(materialised),
        format_bytes(counts + block_trees + bitset + geometry),
    );
}

fn main() {
    print_header(
        "E3+: tree protocol at scale (count engine, parallel per-class batching)",
        "Theorem 3's O(n log n) holds across six further decades of n",
    );
    let t = trials(8);
    let threads = ssr_bench::threads();
    let max_log2: u32 = std::env::var("SSR_SCALE_MAX_LOG2")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(30);
    let ns: Vec<f64> = if ssr_bench::quick() {
        vec![1024.0, 4096.0, 16384.0]
    } else {
        // 2³¹ crosses the u64 interaction-clock boundary (the engine
        // counts in u128); 2³³ is the current feasibility frontier —
        // both stay behind SSR_SCALE_MAX_LOG2 (default 30).
        [14u32, 16, 18, 20, 22, 24, 26, 27, 28, 30, 31, 33]
            .iter()
            .filter(|&&log2| log2 <= max_log2)
            .map(|&log2| (1u64 << log2) as f64)
            .collect()
    };

    let mut table = Table::new(vec![
        "n".into(),
        "x (extra)".into(),
        "trials".into(),
        "stacked median".into(),
        "uniform median".into(),
        "median / (n·log₂n) ×10³".into(),
        "productive/trial".into(),
        "wall-clock/trial".into(),
        "peak RSS".into(),
    ]);
    let mut meds = Vec::new();
    for &nf in &ns {
        let n = nf as usize;
        // Construction and per-trial cost both grow with n; thin the trial
        // count at the top of the grid so the full run stays tractable.
        let t_here = if n > 1 << 24 {
            1
        } else if n > 1 << 20 {
            2
        } else {
            t
        };
        let p = TreeRanking::new(n);
        let mut wall = std::time::Duration::ZERO;
        let mut productive = Vec::new();
        let mut runs = 0u32;
        let mut run = |init: Init<'_>, base: u64, productive: &mut Vec<f64>| -> f64 {
            let scenario = Scenario::new(&p)
                .engine(EngineKind::Count)
                .init(init)
                .base_seed(base)
                .threads(threads);
            let times: Vec<f64> = (0..t_here as u64)
                .map(|s| {
                    let start = std::time::Instant::now();
                    let mut sim = scenario.build_engine(s).unwrap();
                    let rep = sim.run_until_silent(u64::MAX).unwrap();
                    wall += start.elapsed();
                    runs += 1;
                    productive.push(rep.productive_interactions as f64);
                    rep.parallel_time
                })
                .collect();
            Summary::of(&times).median
        };
        let stacked = if n <= STACKED_MAX_N {
            format!("{:.0}", run(Init::Stacked, 61_000, &mut Vec::new()))
        } else {
            "—".to_string()
        };
        let uniform = run(Init::Uniform, 62_000, &mut productive);
        meds.push(uniform);
        let norm = uniform / (nf * nf.log2()) * 1e3;
        let per_trial = wall / runs.max(1);
        let prod_median = Summary::of(&productive).median;
        table.add_row(vec![
            n.to_string(),
            p.num_extra_states().to_string(),
            t_here.to_string(),
            stacked,
            format!("{uniform:.0}"),
            format!("{norm:.2}"),
            format!("{prod_median:.3e}"),
            format!("{:.2?}", per_trial),
            peak_rss_bytes().map_or("n/a".into(), format_bytes),
        ]);
    }
    print!("{}", table.render());
    print_memory_model(*ns.last().unwrap() as usize);
    if threads != 1 {
        println!(
            "(per-class batch splits on {} threads; identical results at any thread count)",
            if threads == 0 { "all".to_string() } else { threads.to_string() }
        );
    }

    // Cross-check: on the smallest grid point the jump and count engines
    // must report statistically indistinguishable medians.
    {
        let n = ns[0] as usize;
        let p = TreeRanking::new(n);
        let sample = |kind: EngineKind| -> f64 {
            let res = Scenario::new(&p)
                .engine(kind)
                .init(Init::Uniform)
                .trials(t)
                .base_seed(63_000)
                .run();
            Summary::of(&res.parallel_times()).median
        };
        let jump = sample(EngineKind::Jump);
        let count = sample(EngineKind::Count);
        let rel = (jump - count).abs() / jump;
        println!(
            "engine cross-check at n = {n}: jump median {jump:.0}, \
             count median {count:.0} (rel diff {rel:.3})"
        );
    }

    let fit = fit_power_law(&ns, &meds);
    let fit_log = fit_power_law_with_polylog(&ns, &meds, 1.0);
    println!(
        "raw fit: median ≈ {:.3}·n^{:.3} (R² = {:.3})\n\
         log-corrected: median ≈ {:.3}·n^{:.3}·log n (R² = {:.3})",
        fit.constant,
        fit.exponent,
        fit.r_squared,
        fit_log.constant,
        fit_log.exponent,
        fit_log.r_squared
    );
    verdict("E3+ raw exponent (≈1 + log factor)", fit.exponent, 0.95, 1.25);
    verdict(
        "E3+ log-corrected exponent (≈1)",
        fit_log.exponent,
        0.8,
        1.15,
    );
    println!(
        "a flat final column (median normalised by n·log₂ n) is the direct \
         visual signature of Θ(n log n)."
    );
}
