//! E3+ — large-scale confirmation of the `O(n log n)` tree protocol.
//!
//! The headline result (Theorem 3) is an asymptotic claim; the main E3
//! grid stops at `n = 16384`. The count-based batched engine pays
//! amortised sub-interaction cost far from silence and `O(log #states)`
//! only per *productive* interaction otherwise — `O(n log n)` of them for
//! the tree protocol — so the law can now be checked across **four** more
//! decades of `n`, up to `n = 2²⁴ ≈ 1.7·10⁷` (quick mode stops at
//! `n = 16384`). The smallest grid point is cross-checked against the
//! exact jump engine; both the raw exponent (should hover just above 1)
//! and the log-corrected model `T ≈ c·n·log n` are fitted.
//!
//! Run: `cargo run --release -p ssr-bench --bin exp_scale`

use ssr_analysis::{fit_power_law, fit_power_law_with_polylog, Summary, Table};
use ssr_bench::{print_header, stacked_start, trials, uniform_start, verdict};
use ssr_core::TreeRanking;
use ssr_engine::engine::{make_engine, EngineKind};
use ssr_engine::Protocol;

fn main() {
    print_header(
        "E3+: tree protocol at scale (count engine)",
        "Theorem 3's O(n log n) holds across four further decades of n",
    );
    let t = trials(8);
    let ns: Vec<f64> = if ssr_bench::quick() {
        vec![1024.0, 4096.0, 16384.0]
    } else {
        vec![
            16384.0,
            65536.0,
            262144.0,
            1_048_576.0,
            4_194_304.0,
            16_777_216.0,
        ]
    };

    let mut table = Table::new(vec![
        "n".into(),
        "x (extra)".into(),
        "trials".into(),
        "stacked median".into(),
        "uniform median".into(),
        "median / (n·log₂n) ×10³".into(),
        "wall-clock/trial".into(),
    ]);
    let mut meds = Vec::new();
    for &nf in &ns {
        let n = nf as usize;
        // Construction and per-trial cost both grow with n; thin the trial
        // count at the top of the grid so the full run stays tractable.
        let t_here = if n > 1 << 20 { 2 } else { t };
        let p = TreeRanking::new(n);
        let mut wall = std::time::Duration::ZERO;
        let mut run = |mk: &dyn Fn(&TreeRanking, u64) -> Vec<u32>, base: u64| -> f64 {
            let times: Vec<f64> = (0..t_here as u64)
                .map(|s| {
                    let start = std::time::Instant::now();
                    let mut sim =
                        make_engine(EngineKind::Count, &p, mk(&p, base + s), base + s).unwrap();
                    let rep = sim.run_until_silent(u64::MAX).unwrap();
                    wall += start.elapsed();
                    rep.parallel_time
                })
                .collect();
            Summary::of(&times).median
        };
        let stacked = run(&stacked_start, 61_000);
        let uniform = run(&uniform_start, 62_000);
        meds.push(uniform);
        let norm = uniform / (nf * nf.log2()) * 1e3;
        let per_trial = wall / (2 * t_here as u32);
        table.add_row(vec![
            n.to_string(),
            p.num_extra_states().to_string(),
            t_here.to_string(),
            format!("{stacked:.0}"),
            format!("{uniform:.0}"),
            format!("{norm:.2}"),
            format!("{:.2?}", per_trial),
        ]);
    }
    print!("{}", table.render());

    // Cross-check: on the smallest grid point the jump and count engines
    // must report statistically indistinguishable medians.
    {
        let n = ns[0] as usize;
        let p = TreeRanking::new(n);
        let sample = |kind: EngineKind| -> f64 {
            let times: Vec<f64> = (0..t as u64)
                .map(|s| {
                    let mut sim =
                        make_engine(kind, &p, uniform_start(&p, 63_000 + s), 63_000 + s)
                            .unwrap();
                    sim.run_until_silent(u64::MAX).unwrap().parallel_time
                })
                .collect();
            Summary::of(&times).median
        };
        let jump = sample(EngineKind::Jump);
        let count = sample(EngineKind::Count);
        let rel = (jump - count).abs() / jump;
        println!(
            "engine cross-check at n = {n}: jump median {jump:.0}, \
             count median {count:.0} (rel diff {rel:.3})"
        );
    }

    let fit = fit_power_law(&ns, &meds);
    let fit_log = fit_power_law_with_polylog(&ns, &meds, 1.0);
    println!(
        "raw fit: median ≈ {:.3}·n^{:.3} (R² = {:.3})\n\
         log-corrected: median ≈ {:.3}·n^{:.3}·log n (R² = {:.3})",
        fit.constant,
        fit.exponent,
        fit.r_squared,
        fit_log.constant,
        fit_log.exponent,
        fit_log.r_squared
    );
    verdict("E3+ raw exponent (≈1 + log factor)", fit.exponent, 0.95, 1.25);
    verdict(
        "E3+ log-corrected exponent (≈1)",
        fit_log.exponent,
        0.8,
        1.15,
    );
    println!(
        "a flat final column (median normalised by n·log₂ n) is the direct \
         visual signature of Θ(n log n)."
    );
}
