//! E3+ — large-scale confirmation of the `O(n log n)` tree protocol.
//!
//! The headline result (Theorem 3) is an asymptotic claim; the main E3
//! grid stops at `n = 16384`. The count engine batches **every**
//! interaction class of the tree protocol's schema — equal-rank dispersal,
//! the buffer epidemic (extra–extra), and the reset/re-enter cross class —
//! so runs that used to fall back to exact stepping for ~90% of their
//! productive work (the `X_i + X_j` churn) now pay amortised
//! sub-interaction cost end to end. That pushes the grid across **five**
//! more decades of `n`, to `n = 2²⁷ ≈ 1.34·10⁸` (quick mode stops at
//! `n = 16384`); memory stays `O(#states)`. The smallest grid point is
//! cross-checked against the exact jump engine; both the raw exponent
//! (should hover just above 1) and the log-corrected model
//! `T ≈ c·n·log n` are fitted, and wall-clock per trial is recorded per
//! decade so regressions in batching coverage are visible directly in
//! this table.
//!
//! Run: `cargo run --release -p ssr-bench --bin exp_scale`
//! (full grid: the top point takes minutes per trial; set `SSR_QUICK=1`
//! for a smoke run)

use ssr_analysis::{fit_power_law, fit_power_law_with_polylog, Summary, Table};
use ssr_bench::{print_header, trials, verdict};
use ssr_core::TreeRanking;
use ssr_engine::{EngineKind, Init, Protocol, Scenario};

fn main() {
    print_header(
        "E3+: tree protocol at scale (count engine, all classes batched)",
        "Theorem 3's O(n log n) holds across five further decades of n",
    );
    let t = trials(8);
    let ns: Vec<f64> = if ssr_bench::quick() {
        vec![1024.0, 4096.0, 16384.0]
    } else {
        vec![
            16384.0,
            65536.0,
            262144.0,
            1_048_576.0,   // 2^20
            4_194_304.0,   // 2^22
            16_777_216.0,  // 2^24
            67_108_864.0,  // 2^26
            134_217_728.0, // 2^27 ≈ 1.34·10⁸
        ]
    };

    let mut table = Table::new(vec![
        "n".into(),
        "x (extra)".into(),
        "trials".into(),
        "stacked median".into(),
        "uniform median".into(),
        "median / (n·log₂n) ×10³".into(),
        "wall-clock/trial".into(),
    ]);
    let mut meds = Vec::new();
    for &nf in &ns {
        let n = nf as usize;
        // Construction and per-trial cost both grow with n; thin the trial
        // count at the top of the grid so the full run stays tractable.
        let t_here = if n > 1 << 24 {
            1
        } else if n > 1 << 20 {
            2
        } else {
            t
        };
        let p = TreeRanking::new(n);
        let mut wall = std::time::Duration::ZERO;
        let mut run = |init: Init<'_>, base: u64| -> f64 {
            let scenario = Scenario::new(&p)
                .engine(EngineKind::Count)
                .init(init)
                .base_seed(base);
            let times: Vec<f64> = (0..t_here as u64)
                .map(|s| {
                    let start = std::time::Instant::now();
                    let mut sim = scenario.build_engine(s).unwrap();
                    let rep = sim.run_until_silent(u64::MAX).unwrap();
                    wall += start.elapsed();
                    rep.parallel_time
                })
                .collect();
            Summary::of(&times).median
        };
        let stacked = run(Init::Stacked, 61_000);
        let uniform = run(Init::Uniform, 62_000);
        meds.push(uniform);
        let norm = uniform / (nf * nf.log2()) * 1e3;
        let per_trial = wall / (2 * t_here as u32);
        table.add_row(vec![
            n.to_string(),
            p.num_extra_states().to_string(),
            t_here.to_string(),
            format!("{stacked:.0}"),
            format!("{uniform:.0}"),
            format!("{norm:.2}"),
            format!("{:.2?}", per_trial),
        ]);
    }
    print!("{}", table.render());

    // Cross-check: on the smallest grid point the jump and count engines
    // must report statistically indistinguishable medians.
    {
        let n = ns[0] as usize;
        let p = TreeRanking::new(n);
        let sample = |kind: EngineKind| -> f64 {
            let res = Scenario::new(&p)
                .engine(kind)
                .init(Init::Uniform)
                .trials(t)
                .base_seed(63_000)
                .run();
            Summary::of(&res.parallel_times()).median
        };
        let jump = sample(EngineKind::Jump);
        let count = sample(EngineKind::Count);
        let rel = (jump - count).abs() / jump;
        println!(
            "engine cross-check at n = {n}: jump median {jump:.0}, \
             count median {count:.0} (rel diff {rel:.3})"
        );
    }

    let fit = fit_power_law(&ns, &meds);
    let fit_log = fit_power_law_with_polylog(&ns, &meds, 1.0);
    println!(
        "raw fit: median ≈ {:.3}·n^{:.3} (R² = {:.3})\n\
         log-corrected: median ≈ {:.3}·n^{:.3}·log n (R² = {:.3})",
        fit.constant,
        fit.exponent,
        fit.r_squared,
        fit_log.constant,
        fit_log.exponent,
        fit_log.r_squared
    );
    verdict("E3+ raw exponent (≈1 + log factor)", fit.exponent, 0.95, 1.25);
    verdict(
        "E3+ log-corrected exponent (≈1)",
        fit_log.exponent,
        0.8,
        1.15,
    );
    println!(
        "a flat final column (median normalised by n·log₂ n) is the direct \
         visual signature of Θ(n log n)."
    );
}
