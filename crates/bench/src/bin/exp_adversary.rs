//! AD — the adversary subsystem under timed fault plans.
//!
//! Self-stabilisation proofs quantify over a *single* adversarial start;
//! the adversary subsystem stresses the operational superset: bursts in
//! the middle of a run, continuous background corruption, replacement
//! churn, and Byzantine agents that never update. Two questions:
//!
//! 1. **Recovery vs burst size** — inject a burst of `f` faults into a
//!    long-silent ring population at a fixed clock time and measure the
//!    recovery-time distribution per burst size, on the jump engine and
//!    the count engine **under the identical fault schedule**. The two
//!    engines simulate the same stochastic process, so their recovery
//!    distributions must agree (KS test), the per-trial fault schedules
//!    must match exactly, and recovery should scale like Theorem 1's
//!    `O(k·n^{3/2})` with `k ≤ f`.
//! 2. **Availability under persistent adversaries** — run a ring
//!    population from a perfect start under background corruption rates
//!    and Byzantine contingents for a fixed horizon and report the
//!    steady-state observables of the [`RunOutcome`]: time-weighted
//!    availability (fraction of interaction time with a correct ranking
//!    prefix), mean/max `k`-distance excursion, and event counts. Runs
//!    that never silence terminate gracefully at the horizon instead of
//!    erroring.
//!
//! Run: `cargo run --release -p ssr-bench --bin exp_adversary`

use ssr_analysis::{ks_two_sample, Summary, Table};
use ssr_bench::{print_header, threads, trials, verdict};
use ssr_core::RingOfTraps;
use ssr_engine::{EngineKind, FaultPlan, Init, RunOutcome, Scenario};

/// Run `n_trials` of `plan` against the ring protocol on a forced engine,
/// returning the per-trial outcomes.
fn outcomes(
    p: &RingOfTraps,
    kind: EngineKind,
    plan: &FaultPlan,
    n_trials: usize,
    base_seed: u64,
    max: u64,
) -> Vec<RunOutcome> {
    Scenario::new(p)
        .engine(kind)
        .init(Init::Perfect)
        .fault_plan(plan.clone())
        .trials(n_trials)
        .base_seed(base_seed)
        .max_interactions(max)
        .threads(threads())
        .run_outcomes()
}

fn main() {
    print_header(
        "AD: timed fault plans, churn, Byzantine agents",
        "identical fault schedules on every engine; recovery O(k·n^{3/2}); \
         graceful availability reporting when silence is unreachable",
    );
    let quick = ssr_bench::quick();
    let t = trials(30);

    // (1) Recovery-time distribution vs burst size, jump vs count.
    let n = if quick { 240 } else { 1056 };
    let p = RingOfTraps::new(n);
    let burst_time = 20 * n as u128;
    let sizes: Vec<u32> = if quick {
        vec![1, 8]
    } else {
        vec![1, 4, 16, 64]
    };
    println!(
        "\n[ring of traps, n = {n}: burst of f faults at t = {burst_time}, \
         recovery parallel time, jump vs count]"
    );
    let mut table = Table::new(vec![
        "f".into(),
        "mean k".into(),
        "jump median T".into(),
        "jump p95 T".into(),
        "count median T".into(),
        "count p95 T".into(),
        "KS p".into(),
    ]);
    let mut schedules_match = true;
    let mut ks_ps = Vec::new();
    let mut medians = Vec::new();
    for &f in &sizes {
        let plan = FaultPlan::new().burst_at(burst_time, f);
        let jump = outcomes(&p, EngineKind::Jump, &plan, t, 21_000 + f as u64, u64::MAX);
        let count = outcomes(&p, EngineKind::Count, &plan, t, 21_000 + f as u64, u64::MAX);
        // The fault process draws from its own seeded stream, so both
        // engines must see the identical schedule and identical damage.
        for (j, c) in jump.iter().zip(&count) {
            schedules_match &= j.faults_injected == c.faults_injected
                && j.bursts.len() == 1
                && c.bursts.len() == 1
                && j.bursts[0].k_after == c.bursts[0].k_after;
        }
        let recovery = |outs: &[RunOutcome]| -> Vec<f64> {
            outs.iter()
                .map(|o| {
                    o.bursts[0].recovery.expect("unbounded run recovers") as f64 / n as f64
                })
                .collect()
        };
        let (jt, ct) = (recovery(&jump), recovery(&count));
        let mean_k = jump.iter().map(|o| o.bursts[0].k_after).sum::<usize>() as f64 / t as f64;
        let (js, cs) = (Summary::of(&jt), Summary::of(&ct));
        let ks = ks_two_sample(&jt, &ct);
        ks_ps.push(ks.p_value);
        medians.push(js.median);
        table.add_row(vec![
            f.to_string(),
            format!("{mean_k:.1}"),
            format!("{:.0}", js.median),
            format!("{:.0}", js.p95),
            format!("{:.0}", cs.median),
            format!("{:.0}", cs.p95),
            format!("{:.3}", ks.p_value),
        ]);
    }
    print!("{}", table.render());
    println!(
        "fault schedules identical across engines in every trial: {}",
        if schedules_match { "yes" } else { "NO" }
    );
    // Schedule identity is exact determinism, not statistics: a mismatch
    // is a bug, so fail hard (this binary doubles as a CI smoke run).
    assert!(
        schedules_match,
        "fault plans must produce identical schedules on every engine"
    );
    let min_p = ks_ps.iter().cloned().fold(f64::INFINITY, f64::min);
    verdict(
        "AD cross-engine recovery distributions (min KS p ≥ 0.05)",
        if min_p >= 0.05 { 1.0 } else { 0.0 },
        1.0,
        1.0,
    );
    let growth = medians.last().unwrap() / medians[0];
    println!(
        "median recovery grows {growth:.1}× from f = {} to f = {} \
         (k-linear ceiling would allow {:.0}×)",
        sizes[0],
        sizes.last().unwrap(),
        *sizes.last().unwrap() as f64 / sizes[0] as f64
    );

    // (2) Availability under persistent adversaries at a fixed horizon.
    let n = if quick { 128 } else { 506 };
    let p = RingOfTraps::new(n);
    let horizon_pt = if quick { 500 } else { 2000 };
    let max = (horizon_pt * n) as u64;
    let t2 = trials(8);
    println!(
        "\n[ring of traps, n = {n}, horizon = {horizon_pt}·n interactions: \
         steady-state observables from a perfect start]"
    );
    let mut table = Table::new(vec![
        "plan".into(),
        "silent".into(),
        "avail".into(),
        "mean k".into(),
        "max k".into(),
        "faults".into(),
        "churn".into(),
    ]);
    let rate = 1.0 / (300.0 * n as f64);
    let plans: Vec<(String, FaultPlan)> = vec![
        ("none".into(), FaultPlan::new()),
        (format!("rate {rate:.1e}"), FaultPlan::new().rate(rate)),
        (
            format!("rate {:.1e}", rate * 10.0),
            FaultPlan::new().rate(rate * 10.0),
        ),
        (format!("churn {rate:.1e}"), FaultPlan::new().churn(rate)),
        ("byz 4".into(), FaultPlan::new().byzantine(4)),
        (
            format!("byz 4 + rate {rate:.1e}"),
            FaultPlan::new().byzantine(4).rate(rate),
        ),
    ];
    for (label, plan) in &plans {
        let outs = outcomes(&p, EngineKind::Auto, plan, t2, 31_000, max);
        let silent = outs.iter().filter(|o| o.silent).count();
        let avail = outs.iter().map(|o| o.availability).sum::<f64>() / t2 as f64;
        let mean_k = outs.iter().map(|o| o.mean_k).sum::<f64>() / t2 as f64;
        let max_k = outs.iter().map(|o| o.max_k).max().unwrap_or(0);
        let faults = outs.iter().map(|o| o.faults_injected).sum::<u64>() / t2 as u64;
        let churn = outs.iter().map(|o| o.churn_events).sum::<u64>() / t2 as u64;
        table.add_row(vec![
            label.clone(),
            format!("{silent}/{t2}"),
            format!("{avail:.4}"),
            format!("{mean_k:.2}"),
            max_k.to_string(),
            faults.to_string(),
            churn.to_string(),
        ]);
    }
    print!("{}", table.render());
    println!(
        "expected shape: availability 1.0 with no plan, degrading with the \
         corruption rate (each fault costs ~k·n^{{1/2}} parallel time of \
         downtime); Byzantine agents holding correct ranks are harmless \
         from a perfect start until background corruption displaces the \
         population around them; every non-convergent run above terminated \
         gracefully with a RunOutcome instead of a timeout error"
    );
}
