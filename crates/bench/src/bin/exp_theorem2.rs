//! E2 — Theorem 2: one extra state (`x = 1`) buys `o(n²)`.
//!
//! The line-of-traps protocol self-stabilises in `O(n^{7/4} log² n)` whp
//! from arbitrary initial configurations. We sweep `n` over exact
//! construction sizes `3m³(m+1)`, fit the raw and polylog-corrected
//! exponents, and compare against the `Θ(n²)` baseline `A_G` on identical
//! starts — the paper's headline is that the ratio `T_line / T_AG`
//! *shrinks* as `n` grows.
//!
//! Run: `cargo run --release -p ssr-bench --bin exp_theorem2`

// Audited: experiment grids cast small f64 population sizes (n <= 2^20) to usize/u32.
#![allow(clippy::cast_possible_truncation)]

use ssr_analysis::regression::fit_power_law_with_polylog;
use ssr_analysis::sweep::{sweep, SweepOptions};
use ssr_bench::{grid, print_header, report_sweep, trials, uniform_start, verdict};
use ssr_core::generic::GenericRanking;
use ssr_core::line::LineOfTraps;

fn main() {
    print_header(
        "E2: line of traps, x = 1 (Theorem 2)",
        "self-stabilising ranking in O(n^{7/4} log² n) = o(n²) whp",
    );
    let t = trials(12);
    // Exact construction sizes 3m³(m+1) for m = 2..6, so every line is a
    // clean (m², 3m, m+1) system.
    let ns = grid(&[72.0, 324.0, 960.0, 2250.0, 4536.0], &[72.0, 324.0, 960.0]);

    let line = sweep(
        &ns,
        |x| LineOfTraps::new(x as usize),
        uniform_start,
        &SweepOptions::new(t).with_base_seed(700),
    );
    let e_raw = report_sweep("line of traps from uniform-random starts", "n", &line);
    let corrected = fit_power_law_with_polylog(&line.xs(), &line.medians(), 2.0);
    println!(
        "polylog-corrected fit: median ≈ {:.4}·n^{:.2}·log²n (R² = {:.3})",
        corrected.constant, corrected.exponent, corrected.r_squared
    );

    let base = sweep(
        &ns,
        |x| GenericRanking::new(x as usize),
        uniform_start,
        &SweepOptions::new(t).with_base_seed(800),
    );
    let e_ag = report_sweep("A_G baseline on the same sizes", "n", &base);

    println!("\n[ratio T_line / T_AG — must shrink with n]");
    let mut table = ssr_analysis::Table::new(vec!["n".into(), "ratio".into()]);
    let mut first = f64::NAN;
    let mut last = f64::NAN;
    for (l, b) in line.rows.iter().zip(&base.rows) {
        let ratio = l.median / b.median;
        if first.is_nan() {
            first = ratio;
        }
        last = ratio;
        table.add_row(vec![format!("{}", l.x as usize), format!("{ratio:.3}")]);
    }
    print!("{}", table.render());

    println!();
    verdict("line raw exponent (theory 1.75 + polylog)", e_raw, 1.5, 2.1);
    verdict("A_G exponent (theory 2)", e_ag, 1.7, 2.3);
    println!(
        "VERDICT crossover: ratio falls from {first:.2} to {last:.2} → {}",
        if last < first { "line protocol wins asymptotically (MATCHES)" } else { "CHECK" }
    );
}
