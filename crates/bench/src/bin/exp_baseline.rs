//! E0 — the `Θ(n²)` baseline: generic state-optimal protocol `A_G`.
//!
//! Regenerates the scaling table behind the paper's framing claim that the
//! only previously known state-optimal self-stabilising ranking protocol
//! stabilises in `Θ(n²)` parallel time whp, from both adversarial
//! (stacked) and arbitrary (uniform-random) starts.
//!
//! Run: `cargo run --release -p ssr-bench --bin exp_baseline`

use ssr_analysis::sweep::{sweep, SweepOptions};
use ssr_bench::{grid, print_header, report_sweep, stacked_start, trials, uniform_start, verdict};
use ssr_core::generic::GenericRanking;

fn main() {
    print_header(
        "E0: generic protocol A_G",
        "silent self-stabilising ranking in Θ(n²) parallel time whp",
    );
    let ns = grid(
        &[64.0, 128.0, 256.0, 512.0, 1024.0],
        &[64.0, 128.0, 256.0],
    );
    let t = trials(15);

    let stacked = sweep(
        &ns,
        |x| GenericRanking::new(x as usize),
        stacked_start,
        &SweepOptions::new(t).with_base_seed(100),
    );
    let e1 = report_sweep("A_G from stacked start (all agents in rank 0)", "n", &stacked);

    let random = sweep(
        &ns,
        |x| GenericRanking::new(x as usize),
        uniform_start,
        &SweepOptions::new(t).with_base_seed(200),
    );
    let e2 = report_sweep("A_G from uniform-random starts", "n", &random);

    println!();
    verdict("A_G stacked", e1, 1.7, 2.3);
    verdict("A_G random", e2, 1.7, 2.3);
}
