//! E0 — the `Θ(n²)` baseline: generic state-optimal protocol `A_G`.
//!
//! Regenerates the scaling table behind the paper's framing claim that the
//! only previously known state-optimal self-stabilising ranking protocol
//! stabilises in `Θ(n²)` parallel time whp, from both adversarial
//! (stacked) and arbitrary (uniform-random) starts.
//!
//! The second half (E0+) re-measures the law through the count-based
//! batched engine, which pushes the grid two decades past what per-step
//! simulation can reach, and records the per-engine wall-clock at a common
//! size so the speedup is visible in the log.
//!
//! Run: `cargo run --release -p ssr-bench --bin exp_baseline`

// Audited: experiment grids cast small f64 population sizes (n <= 2^20) to usize/u32.
#![allow(clippy::cast_possible_truncation)]

use ssr_analysis::sweep::{sweep, SweepOptions};
use ssr_analysis::{fit_power_law, Summary, Table};
use ssr_bench::{grid, print_header, report_sweep, stacked_start, trials, uniform_start, verdict};
use ssr_core::generic::GenericRanking;
use ssr_engine::{EngineKind, Init, Scenario};

fn main() {
    print_header(
        "E0: generic protocol A_G",
        "silent self-stabilising ranking in Θ(n²) parallel time whp",
    );
    let ns = grid(
        &[64.0, 128.0, 256.0, 512.0, 1024.0],
        &[64.0, 128.0, 256.0],
    );
    let t = trials(15);

    let stacked = sweep(
        &ns,
        |x| GenericRanking::new(x as usize),
        stacked_start,
        &SweepOptions::new(t).with_base_seed(100),
    );
    let e1 = report_sweep("A_G from stacked start (all agents in rank 0)", "n", &stacked);

    let random = sweep(
        &ns,
        |x| GenericRanking::new(x as usize),
        uniform_start,
        &SweepOptions::new(t).with_base_seed(200),
    );
    let e2 = report_sweep("A_G from uniform-random starts", "n", &random);

    println!();
    verdict("A_G stacked", e1, 1.7, 2.3);
    verdict("A_G random", e2, 1.7, 2.3);

    // ---------------------------------------------------------------
    // E0+ — engine comparison and the count-engine decades.
    // ---------------------------------------------------------------
    println!();
    print_header(
        "E0+: A_G through the engine hierarchy",
        "the count engine extends the Θ(n²) grid two decades past per-step simulation",
    );

    // Wall-clock per engine at a common size (naive included only in full
    // mode; it needs Θ(n³) raw interactions).
    let n_cmp = 512;
    let p = GenericRanking::new(n_cmp);
    let cmp_trials = trials(6) as u64;
    let mut cmp = Table::new(vec![
        "engine".into(),
        "median parallel time".into(),
        "wall-clock/trial".into(),
    ]);
    let kinds: &[EngineKind] = if ssr_bench::quick() {
        &[EngineKind::Jump, EngineKind::Count]
    } else {
        &[EngineKind::Naive, EngineKind::Jump, EngineKind::Count]
    };
    for &kind in kinds {
        let scenario = Scenario::new(&p)
            .engine(kind)
            .init(Init::Stacked)
            .base_seed(300);
        let start = std::time::Instant::now();
        let times: Vec<f64> = (0..cmp_trials)
            .map(|s| scenario.run_one(s).unwrap().parallel_time)
            .collect();
        let wall = start.elapsed() / cmp_trials as u32;
        cmp.add_row(vec![
            kind.name().into(),
            format!("{:.0}", Summary::of(&times).median),
            format!("{wall:.2?}"),
        ]);
    }
    println!("\n[engine wall-clock at n = {n_cmp}, stacked start]");
    print!("{}", cmp.render());

    // Count-engine extension of the Θ(n²) law.
    let ext_ns: Vec<f64> = if ssr_bench::quick() {
        vec![512.0, 1024.0, 2048.0]
    } else {
        vec![2048.0, 4096.0, 8192.0, 16384.0]
    };
    let ext_trials = trials(6).max(3);
    let mut ext = Table::new(vec![
        "n".into(),
        "median parallel time".into(),
        "median / n² ×10³".into(),
        "wall-clock/trial".into(),
    ]);
    let mut meds = Vec::new();
    for &nf in &ext_ns {
        let n = nf as usize;
        let p = GenericRanking::new(n);
        let t_here = if n >= 8192 { 3 } else { ext_trials };
        let scenario = Scenario::new(&p)
            .engine(EngineKind::Count)
            .init(Init::Stacked)
            .base_seed(400);
        let start = std::time::Instant::now();
        let times: Vec<f64> = (0..t_here as u64)
            .map(|s| scenario.run_one(s).unwrap().parallel_time)
            .collect();
        let wall = start.elapsed() / t_here as u32;
        let med = Summary::of(&times).median;
        meds.push(med);
        ext.add_row(vec![
            n.to_string(),
            format!("{med:.0}"),
            format!("{:.2}", med / (nf * nf) * 1e3),
            format!("{wall:.2?}"),
        ]);
    }
    println!("\n[A_G through the count engine, stacked start]");
    print!("{}", ext.render());
    let fit = fit_power_law(&ext_ns, &meds);
    println!(
        "count-engine fit: median ≈ {:.3}·n^{:.2} (R² = {:.3})",
        fit.constant, fit.exponent, fit.r_squared
    );
    verdict("A_G count-engine decades", fit.exponent, 1.7, 2.3);
}
