//! L1/L2 — trap mechanics: surplus release (Lemma 1) and tidiness
//! (Lemma 2) timing.
//!
//! Lemma 1: a trap of size `m + 1` with surplus `l` releases at least
//! `⌊(l+1)/2⌋` agents within parallel time `O(mn)`, and `l` agents within
//! `O(mn log l)`. Lemma 2: any configuration of a trap system becomes
//! (and stays) tidy within parallel time `O(mn)`. With `m = Θ(√n)` both
//! bounds are `O(n^{3/2})` — we fit the measured exponents against that
//! ceiling (the bounds are worst-case, so measured values may sit lower).
//!
//! Run: `cargo run --release -p ssr-bench --bin exp_lemma1`

// Audited: experiment grids cast small f64 population sizes to usize/u32.
#![allow(clippy::cast_possible_truncation)]

use ssr_analysis::{fit_power_law, Summary, Table};
use ssr_bench::{grid, print_header, trials};
use ssr_core::ring::RingOfTraps;

use ssr_engine::rng::Xoshiro256;
use ssr_engine::{init, Simulation};

/// Parallel time until trap 0 of a ring (loaded with surplus `l`) has
/// ejected at least `target` agents through its gate.
fn release_time(n: usize, surplus: usize, target: usize, seed: u64) -> f64 {
    let p = RingOfTraps::new(n);
    let chain = p.chain().clone();
    let gate0 = chain.gate(0);
    let top0 = chain.top(0);
    // Load trap 0 fully plus `surplus` extra agents at its gate; spread
    // the rest of the population over the remaining rank states (one per
    // state from trap 1 upward).
    let mut cfg = Vec::with_capacity(n);
    for b in 0..chain.size(0) {
        cfg.push(chain.state(0, b));
    }
    cfg.extend(std::iter::repeat_n(gate0, surplus));
    let mut s = chain.end_id() - 1;
    while cfg.len() < n {
        cfg.push(s);
        s -= 1;
    }
    cfg.truncate(n);

    let mut sim = Simulation::new(&p, cfg, seed).unwrap();
    let mut ejected = 0usize;
    loop {
        if let Some(ev) = sim.step() {
            // A gate-0 firing ejects the responder to the next trap's gate.
            if ev.before == (gate0, gate0) && ev.after.0 == top0 {
                ejected += 1;
                if ejected >= target {
                    return sim.parallel_time();
                }
            }
        }
        assert!(!sim.is_silent(), "surplus must be released before silence");
    }
}

/// Parallel time until the whole ring configuration is tidy, from a
/// uniform-random start.
fn tidy_time(n: usize, seed: u64) -> f64 {
    let p = RingOfTraps::new(n);
    let mut rng = Xoshiro256::seed_from_u64(seed ^ 0xABCD);
    let cfg = init::uniform_random(n, n, &mut rng);
    let mut sim = Simulation::new(&p, cfg, seed).unwrap();
    loop {
        if p.is_tidy(sim.counts()) {
            return sim.parallel_time();
        }
        // Tidiness only changes on productive steps; advance to the next.
        while sim.step().is_none() {}
    }
}

fn main() {
    print_header(
        "L1/L2: agent-trap mechanics",
        "surplus release and tidiness within O(mn) parallel time (= O(n^{3/2}) for m = √n)",
    );
    let t = trials(10);
    let ns = grid(&[110.0, 240.0, 506.0, 1056.0], &[110.0, 240.0]);

    println!("\n[Lemma 1: time for a trap with surplus l = m to release ⌊(l+1)/2⌋ agents]");
    let mut table = Table::new(vec!["n".into(), "m".into(), "mean T".into(), "max T".into()]);
    let mut meds = Vec::new();
    for &nf in &ns {
        let n = nf as usize;
        let p = RingOfTraps::new(n);
        let m = p.chain().size(0) as usize - 1;
        let surplus = m;
        let target = surplus.div_ceil(2);
        let times: Vec<f64> = (0..t as u64)
            .map(|s| release_time(n, surplus, target.max(1), 4000 + s))
            .collect();
        let s = Summary::of(&times);
        meds.push(s.median);
        table.add_row(vec![
            n.to_string(),
            m.to_string(),
            format!("{:.0}", s.mean),
            format!("{:.0}", s.max),
        ]);
    }
    print!("{}", table.render());
    let fit = fit_power_law(&ns, &meds);
    println!(
        "fit: T(n) ≈ {:.3}·n^{:.2} (R² = {:.3}); Lemma 1's ceiling is parallel \
         time O(mn) = O(n^1.5) for m = √n — measured exponent must not exceed it",
        fit.constant, fit.exponent, fit.r_squared
    );
    if fit.exponent <= 1.6 {
        println!("VERDICT Lemma 1: within the O(n^1.5) ceiling → MATCHES");
    } else {
        println!("VERDICT Lemma 1: exponent above ceiling → CHECK");
    }

    println!("\n[Lemma 2: parallel time to tidiness from uniform-random starts]");
    let mut table = Table::new(vec!["n".into(), "mean T".into(), "max T".into()]);
    let mut meds = Vec::new();
    for &nf in &ns {
        let n = nf as usize;
        let times: Vec<f64> = (0..t as u64).map(|s| tidy_time(n, 5000 + s)).collect();
        let s = Summary::of(&times);
        meds.push(s.median.max(1e-9));
        table.add_row(vec![
            n.to_string(),
            format!("{:.1}", s.mean),
            format!("{:.1}", s.max),
        ]);
    }
    print!("{}", table.render());
    let fit = fit_power_law(&ns, &meds);
    let fit_log = ssr_analysis::fit_power_law_with_polylog(&ns, &meds, 1.0);
    println!(
        "fit: T(n) ≈ {:.4}·n^{:.2} (R² = {:.3}); log-corrected: \
         ≈ {:.4}·n^{:.2}·log n — Lemma 2's ceiling is parallel time \
         O(mn) = O(n^1.5); at these sizes the union-bound log over the \
         Θ(n) descending agents is still visible, so the corrected \
         exponent is the one to compare",
        fit.constant, fit.exponent, fit.r_squared, fit_log.constant, fit_log.exponent
    );
    if fit_log.exponent <= 1.6 {
        println!("VERDICT Lemma 2: within the O(n^1.5) (×log) ceiling → MATCHES");
    } else {
        println!("VERDICT Lemma 2: exponent above ceiling → CHECK");
    }
}
