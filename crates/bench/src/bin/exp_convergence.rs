//! C1 — convergence traces: distance-to-ranking over time.
//!
//! Complements the endpoint tables with the full trajectory shape: for
//! each protocol we record the number of *missing rank states* (the
//! paper's distance `k`) at exponentially spaced checkpoints of one run,
//! plus the line protocol's token count `r(C)` (which Lemmas 14–18 argue
//! decays geometrically after an initial phase) and the ring's weight
//! `K = k₁ + 2k₂` (non-increasing by Lemma 3).
//!
//! Run: `cargo run --release -p ssr-bench --bin exp_convergence`

// Audited: experiment grids cast small f64 population sizes to usize/u32.
#![allow(clippy::cast_possible_truncation)]

use ssr_analysis::Table;
use ssr_bench::{print_header, uniform_start};
use ssr_core::{GenericRanking, LineOfTraps, RingOfTraps, TreeRanking};
use ssr_engine::observer::NullObserver;
use ssr_engine::{init, Protocol, Simulation};

/// Distance trace of one naive-simulation run at multiplicative
/// checkpoints; returns (parallel time, metric) pairs.
fn trace<P: Protocol, M: Fn(&[u32]) -> u64>(
    p: &P,
    start: Vec<u32>,
    seed: u64,
    metric: M,
    max_parallel: f64,
) -> Vec<(f64, u64)> {
    let n = p.population_size();
    let mut sim = Simulation::new(p, start, seed).unwrap();
    let mut out = vec![(0.0, metric(sim.counts()))];
    let mut checkpoint = (n as u64).max(16);
    while !sim.is_silent() && sim.parallel_time() < max_parallel {
        let budget = checkpoint.saturating_sub(sim.interactions());
        sim.run_for(budget, &mut NullObserver);
        out.push((sim.parallel_time(), metric(sim.counts())));
        checkpoint *= 2;
    }
    out
}

fn sparkline(values: &[u64]) -> String {
    const BARS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    let max = *values.iter().max().unwrap_or(&1) as f64;
    values
        .iter()
        .map(|&v| {
            if max == 0.0 {
                BARS[0]
            } else {
                BARS[((v as f64 / max * 7.0).round() as usize).min(7)]
            }
        })
        .collect()
}

fn main() {
    print_header(
        "C1: convergence traces",
        "distance-to-ranking decays monotonically; ring weight K and line \
         tokens r(C) decay as the lemmas predict",
    );
    let n = if ssr_bench::quick() { 324 } else { 960 };
    let num_ranks = n;

    println!("\n[distance k(t) = missing rank states, one run each, n = {n}]");
    let mut table = Table::new(vec![
        "protocol".into(),
        "trace (exponential checkpoints)".into(),
        "final T".into(),
    ]);

    let missing = move |counts: &[u32]| -> u64 {
        counts[..num_ranks].iter().filter(|&&c| c == 0).count() as u64
    };

    let generic = GenericRanking::new(n);
    let tr = trace(&generic, uniform_start(&generic, 1), 11, missing, 1e9);
    table.add_row(vec![
        "A_G".into(),
        sparkline(&tr.iter().map(|&(_, v)| v).collect::<Vec<_>>()),
        format!("{:.0}", tr.last().unwrap().0),
    ]);

    let ring = RingOfTraps::new(n);
    let tr = trace(&ring, uniform_start(&ring, 2), 12, missing, 1e9);
    table.add_row(vec![
        "ring".into(),
        sparkline(&tr.iter().map(|&(_, v)| v).collect::<Vec<_>>()),
        format!("{:.0}", tr.last().unwrap().0),
    ]);

    let line = LineOfTraps::new(n);
    let tr = trace(&line, uniform_start(&line, 3), 13, missing, 1e9);
    table.add_row(vec![
        "line".into(),
        sparkline(&tr.iter().map(|&(_, v)| v).collect::<Vec<_>>()),
        format!("{:.0}", tr.last().unwrap().0),
    ]);

    let tree = TreeRanking::new(n);
    let tr = trace(&tree, uniform_start(&tree, 4), 14, missing, 1e9);
    table.add_row(vec![
        "tree".into(),
        sparkline(&tr.iter().map(|&(_, v)| v).collect::<Vec<_>>()),
        format!("{:.0}", tr.last().unwrap().0),
    ]);
    print!("{}", table.render());

    // Ring: weight K along the run (Lemma 3 — non-increasing once tidy).
    println!("\n[ring weight K = k₁ + 2k₂ along one run]");
    let ring2 = RingOfTraps::new(n);
    let ring_ref = &ring2;
    let tr = trace(
        ring_ref,
        uniform_start(ring_ref, 5),
        15,
        move |c| ring_ref.weight_k(c),
        1e9,
    );
    let mut table = Table::new(vec!["parallel time".into(), "K".into()]);
    for (t, k) in &tr {
        table.add_row(vec![format!("{t:.0}"), k.to_string()]);
    }
    print!("{}", table.render());

    // Line: token count r(C) along the run (Lemmas 14–18 — geometric
    // decay after the initial phase).
    println!("\n[line token count r(C) along one run]");
    let line2 = LineOfTraps::new(n);
    let line_ref = &line2;
    let tr = trace(
        line_ref,
        init::all_in(n, line_ref.x_state()),
        16,
        move |c| line_ref.tokens(c),
        1e9,
    );
    let mut table = Table::new(vec!["parallel time".into(), "r(C)".into()]);
    for (t, r) in &tr {
        table.add_row(vec![format!("{t:.0}"), r.to_string()]);
    }
    print!("{}", table.render());
    println!(
        "\nall three metrics decay to 0 — the monotone shapes the paper's \
         potential arguments (Lemma 3, Lemmas 14–18) rely on."
    );
}
