//! A1–A3 — ablations of the design choices DESIGN.md calls out.
//!
//! * **A1 — ring trap count**: Theorem 1's construction uses `m ≈ √n`
//!   traps of size `≈ √n`. Sweeping the trap count at fixed `n` between
//!   the extremes (1 trap of size n … n traps of size 1 ≡ `A_G`) shows
//!   why the balanced √n split is the right shape.
//! * **A2 — line routing topology**: §4.2 routes `X`-agents over the
//!   cubic graph `G` with diameter `O(log m)`. Replacing it with
//!   next-line (diameter `Θ(m²)`) or self-loop routing degrades
//!   stabilisation, demonstrating that the graph is load-bearing.
//! * **A3 — tree buffer length**: §5 sizes the red/green buffer line at
//!   `2k = O(log n)` so the Lemma 21 epidemic fully separates reset
//!   phases. Shorter buffers still stabilise (stability is scheduling-
//!   independent) but mix red and green phases and pay for it in time.
//!
//! Run: `cargo run --release -p ssr-bench --bin exp_ablation`

// Audited: experiment grids cast small f64 population sizes to usize/u32.
#![allow(clippy::cast_possible_truncation)]

use ssr_analysis::{Summary, Table};
use ssr_bench::{print_header, stacked_start, trials, uniform_start};
use ssr_engine::State;
use ssr_core::line::{LineOfTraps, RoutingMode};
use ssr_core::ring::RingOfTraps;
use ssr_core::tree::TreeRanking;
use ssr_engine::{Init, Scenario};

/// Measure with an interaction cap; timed-out trials count against the
/// success rate (degraded designs are *expected* to blow the budget).
fn measure_from<P, F>(
    p: &P,
    make: F,
    t: usize,
    seed: u64,
    max_interactions: u64,
) -> (Option<Summary>, f64)
where
    P: ssr_engine::InteractionSchema + Sync,
    F: Fn(&P, u64) -> Vec<State> + Sync,
{
    let make = |s| make(p, s);
    let res = Scenario::new(p)
        .init(Init::Custom(&make))
        .trials(t)
        .base_seed(seed)
        .max_interactions(max_interactions)
        .run();
    let times = res.parallel_times();
    let summary = if times.is_empty() {
        None
    } else {
        Some(Summary::of(&times))
    };
    (summary, res.success_rate())
}

fn measure<P: ssr_engine::InteractionSchema + Sync>(
    p: &P,
    t: usize,
    seed: u64,
    max_interactions: u64,
) -> (Option<Summary>, f64) {
    measure_from(p, |p, s| uniform_start(p, s), t, seed, max_interactions)
}

fn fmt_opt(s: &Option<Summary>, f: impl Fn(&Summary) -> f64) -> String {
    match s {
        Some(s) => format!("{:.0}", f(s)),
        None => "timeout".to_string(),
    }
}

fn main() {
    let t = trials(10);

    print_header(
        "A1: ring-of-traps trap count (fixed n, vary m)",
        "the √n-balanced ring is the designed operating point; m = n \
         degenerates to A_G",
    );
    let n = if ssr_bench::quick() { 240 } else { 506 };
    let mut table = Table::new(vec![
        "traps m".into(),
        "trap size".into(),
        "median T".into(),
        "max T".into(),
    ]);
    let sqrt_m = RingOfTraps::new(n).num_traps();
    let mut candidates = vec![1usize, 2, sqrt_m / 2, sqrt_m, sqrt_m * 2, n / 4, n];
    candidates.dedup();
    for m in candidates {
        if m == 0 || m > n {
            continue;
        }
        let p = RingOfTraps::with_traps(n, m);
        let (s, _ok) = measure(&p, t, 9000 + m as u64, u64::MAX);
        let s = s.expect("ring trials always stabilise");
        table.add_row(vec![
            m.to_string(),
            format!("~{}", n / m),
            format!("{:.0}", s.median),
            format!("{:.0}", s.max),
        ]);
    }
    print!("{}", table.render());
    println!("(m = {sqrt_m} is the designed √n point; m = n reproduces A_G)");

    println!();
    print_header(
        "A2: line-of-traps routing topology",
        "the cubic graph G (diameter O(log m)) vs degraded routings, from \
         the concentrated adversarial start (all agents stacked in line 0)",
    );
    let n = if ssr_bench::quick() { 144 } else { 324 };
    let mut table = Table::new(vec![
        "routing".into(),
        "median T".into(),
        "max T".into(),
        "vs G".into(),
        "ok".into(),
    ]);
    let mut base = f64::NAN;
    // Degraded routings can be non-terminating from this start (self-loop
    // routing churns at ~80% productive interactions forever); measure the
    // designed topology first, then cap degraded trials at 5x its median
    // interaction budget with a reduced trial count — a timeout IS the
    // ablation's finding.
    let mut cap = u64::MAX;
    for (name, mode) in [
        ("cubic graph G", RoutingMode::CubicGraph),
        ("next line", RoutingMode::NextLine),
        ("self loop", RoutingMode::SelfLoop),
    ] {
        let p = LineOfTraps::new(n).with_routing(mode);
        // Stacked start: every agent in state 0 (line 0). Self-loop
        // routing can never feed the other lines from here — the paper's
        // graph is what makes recovery from concentrated configurations
        // possible at all.
        let trials_here = if cap == u64::MAX { t } else { t.min(3) };
        let (s, ok) =
            measure_from(&p, stacked_start, trials_here, 9100, cap);
        if base.is_nan() {
            base = s.as_ref().map(|s| s.median).unwrap_or(f64::NAN);
            cap = (base * n as f64 * 5.0) as u64;
        }
        let ratio = s
            .as_ref()
            .map(|s| format!("{:.2}x", s.median / base))
            .unwrap_or_else(|| ">cap".into());
        table.add_row(vec![
            name.into(),
            fmt_opt(&s, |s| s.median),
            fmt_opt(&s, |s| s.max),
            ratio,
            format!("{:.0}%", ok * 100.0),
        ]);
    }
    print!("{}", table.render());
    println!(
        "(n = {n}; self-loop routing cannot reach initially-empty lines, so \
         it must time out; next-line spreads but with Θ(m²) diameter)"
    );

    println!();
    print_header(
        "A3: tree-of-ranks buffer length 2k",
        "the O(log n) red/green buffer separates reset phases; k below \
         log n mixes phases and slows stabilisation",
    );
    let n = if ssr_bench::quick() { 512 } else { 2048 };
    let default_k = TreeRanking::new(n).buffer_half();
    let mut table = Table::new(vec![
        "k".into(),
        "extra states".into(),
        "median T".into(),
        "ok".into(),
    ]);
    // Measure the default first, then cap tiny buffers at 200x its median
    // interaction budget (mixing red/green phases can be pathologically
    // slow; a timeout is itself the ablation's finding).
    let mut rows: Vec<(usize, Option<Summary>, f64)> = Vec::new();
    let (s_def, ok_def) = {
        let p = TreeRanking::with_buffer(n, default_k);
        measure(&p, t, 9200, u64::MAX)
    };
    let cap = (s_def.as_ref().expect("default stabilises").median
        * n as f64
        * 20.0) as u64;
    rows.push((default_k, s_def, ok_def));
    for k in [1usize, 2, default_k / 2, default_k * 2] {
        if k == 0 || k == default_k {
            continue;
        }
        let p = TreeRanking::with_buffer(n, k);
        let (s, ok) = measure(&p, t.min(4), 9200 + k as u64, cap);
        rows.push((k, s, ok));
    }
    rows.sort_by_key(|&(k, _, _)| k);
    for (k, s, ok) in rows {
        table.add_row(vec![
            format!("{k}{}", if k == default_k { " (default)" } else { "" }),
            (2 * k).to_string(),
            fmt_opt(&s, |s| s.median),
            format!("{:.0}%", ok * 100.0),
        ]);
    }
    print!("{}", table.render());
    println!("(n = {n}; default k = 2⌈log₂ n⌉ = {default_k})");
}
