//! E3 — Theorem 3: `O(log n)` extra states buy `O(n log n)` time.
//!
//! The tree-of-ranks protocol stabilises in `O(n log n)` whp. We sweep `n`
//! (expect exponent ≈ 1 after removing one log factor), measure the
//! Lemma 21 reset epidemic (`O(log n)` parallel time to sweep every agent
//! out of the tree), and close with the paper's summary table: all four
//! protocols on one population.
//!
//! Run: `cargo run --release -p ssr-bench --bin exp_theorem3`

// Audited: experiment grids cast small f64 population sizes (n <= 2^20) to usize/u32.
#![allow(clippy::cast_possible_truncation)]

use ssr_analysis::regression::fit_power_law_with_polylog;
use ssr_analysis::sweep::{sweep, SweepOptions};
use ssr_analysis::{Summary, Table};
use ssr_bench::{
    grid, mean_parallel_time, print_header, report_sweep, stacked_start, trials, uniform_start,
    verdict,
};
use ssr_core::{GenericRanking, LineOfTraps, RingOfTraps, TreeRanking};
use ssr_engine::observer::{FnObserver, TransitionEvent};
use ssr_engine::{init, Protocol, Simulation};

/// Lemma 21 probe: start from a perfect ranking with one agent replaced by
/// a red `X₁` seed; measure the parallel time until every agent has left
/// the tree (the red epidemic has swept the population).
fn epidemic_time(n: usize, seed: u64) -> f64 {
    let p = TreeRanking::new(n);
    let mut cfg: Vec<u32> = init::perfect_ranking(n);
    cfg[n - 1] = p.x(1);
    let mut sim = Simulation::new(&p, cfg, seed).unwrap();
    let mut swept_at: Option<u64> = None;
    {
        let mut obs = FnObserver::new(|step, _e: &TransitionEvent, counts: &[u32]| {
            if swept_at.is_none() && counts[..n].iter().all(|&c| c == 0) {
                swept_at = Some(step);
            }
        });
        sim.run_until_silent_observed(u64::MAX, &mut obs).unwrap();
    }
    swept_at.expect("reset must sweep the tree") as f64 / n as f64
}

fn main() {
    print_header(
        "E3: tree of ranks, x = O(log n) (Theorem 3)",
        "silent self-stabilising ranking in O(n log n) whp",
    );
    let t = trials(15);
    let ns = grid(
        &[256.0, 1024.0, 4096.0, 16384.0],
        &[256.0, 1024.0],
    );

    let stacked = sweep(
        &ns,
        |x| TreeRanking::new(x as usize),
        stacked_start,
        &SweepOptions::new(t).with_base_seed(900),
    );
    let e_stacked = report_sweep("tree from stacked (all-at-root) starts", "n", &stacked);

    let random = sweep(
        &ns,
        |x| TreeRanking::new(x as usize),
        uniform_start,
        &SweepOptions::new(t).with_base_seed(1000),
    );
    let e_random = report_sweep("tree from uniform-random starts", "n", &random);
    let corrected = fit_power_law_with_polylog(&random.xs(), &random.medians(), 1.0);
    println!(
        "polylog-corrected fit: median ≈ {:.4}·n^{:.2}·log n (R² = {:.3})",
        corrected.constant, corrected.exponent, corrected.r_squared
    );

    // Lemma 21: reset epidemic is O(log n) parallel time.
    println!("\n[Lemma 21: red-epidemic sweep time (parallel) vs n]");
    let mut table = Table::new(vec!["n".into(), "mean".into(), "max".into(), "/log₂n".into()]);
    let ep_ns = grid(&[128_f64, 512.0, 2048.0, 8192.0], &[128.0, 512.0]);
    for &nf in &ep_ns {
        let n = nf as usize;
        let times: Vec<f64> = (0..trials(8) as u64)
            .map(|s| epidemic_time(n, 7000 + s))
            .collect();
        let s = Summary::of(&times);
        table.add_row(vec![
            n.to_string(),
            format!("{:.1}", s.mean),
            format!("{:.1}", s.max),
            format!("{:.2}", s.mean / (n as f64).log2()),
        ]);
    }
    print!("{}", table.render());
    println!("(a flat last column = Θ(log n) epidemic, as Lemma 21 claims)");

    // Summary table: all four protocols, one population.
    let n_sum = if ssr_bench::quick() { 324 } else { 960 };
    println!("\n[paper summary — all four protocols, n = {n_sum}, uniform-random starts]");
    let mut table = Table::new(vec![
        "protocol".into(),
        "x".into(),
        "theory".into(),
        "mean T".into(),
    ]);
    let g = GenericRanking::new(n_sum);
    let r = RingOfTraps::new(n_sum);
    let l = LineOfTraps::new(n_sum);
    let tr = TreeRanking::new(n_sum);
    let rows: Vec<(&str, usize, &str, f64)> = vec![
        ("A_G", 0, "Θ(n²)", mean_parallel_time(&g, uniform_start, t, 1)),
        ("ring", 0, "O(n²log²n)", mean_parallel_time(&r, uniform_start, t, 2)),
        ("line", 1, "O(n^1.75log²n)", mean_parallel_time(&l, uniform_start, t, 3)),
        ("tree", Protocol::num_extra_states(&tr), "O(n log n)", {
            mean_parallel_time(&tr, uniform_start, t, 4)
        }),
    ];
    for (name, x, theory, time) in rows {
        table.add_row(vec![
            name.into(),
            x.to_string(),
            theory.into(),
            format!("{time:.0}"),
        ]);
    }
    print!("{}", table.render());

    println!();
    verdict("tree stacked exponent (theory 1 + log)", e_stacked, 0.85, 1.35);
    verdict("tree random exponent (theory 1 + log)", e_random, 0.85, 1.35);
}
