//! EF — transient-fault recovery (the operational face of Theorem 1).
//!
//! A silent, self-stabilising ranking protocol doubles as a fault-tolerant
//! one: corrupt `f` agents of a stabilised population and the adversarial
//! restart is exactly a `k`-distant configuration with `k ≤ f`. Theorem 1
//! then promises recovery in `O(min(k·n^{3/2}, n² log² n))` for the ring
//! protocol. This experiment measures:
//!
//! 1. recovery time vs number of faults `f` at fixed `n` (ring), which
//!    should grow with `f` and stay far below the from-scratch `Θ(n²)`;
//! 2. recovery time vs `n` at fixed small `f` (ring), exponent ≈ 1.5;
//! 3. a cross-protocol comparison at fixed `(n, f)` — the tree protocol's
//!    `O(n log n)` makes it the fastest healer, the `A_G` baseline the
//!    slowest.
//!
//! Run: `cargo run --release -p ssr-bench --bin exp_faults`

// Audited: fault-count grids cast small f64 fractions of n (n <= 2^20) to usize/u64.
#![allow(clippy::cast_possible_truncation)]

use ssr_analysis::{fit_power_law, Summary, Table};
use ssr_bench::{grid, print_header, trials, verdict};
use ssr_core::{GenericRanking, RingOfTraps, TreeRanking};
use ssr_engine::faults::recovery_after_faults;
use ssr_engine::{InteractionSchema, Protocol};

fn recovery_times<P: InteractionSchema>(
    p: &P,
    faults: usize,
    n_trials: usize,
    base_seed: u64,
) -> (Vec<f64>, f64) {
    let mut times = Vec::with_capacity(n_trials);
    let mut distance_sum = 0usize;
    for t in 0..n_trials as u64 {
        let rep = recovery_after_faults(p, faults, base_seed + t, u64::MAX)
            .expect("no interaction cap");
        times.push(rep.recovered.parallel_time);
        distance_sum += rep.distance_after_faults;
    }
    (times, distance_sum as f64 / n_trials as f64)
}

fn main() {
    print_header(
        "EF: transient-fault recovery",
        "f faults ⇒ k-distant start with k ≤ f; ring recovers in O(min(k·n^{3/2}, n² log² n))",
    );
    let t = trials(12);

    // (1) Fixed n, sweep f.
    let n = if ssr_bench::quick() { 110 } else { 506 };
    println!("\n[ring of traps, n = {n}: recovery parallel time vs faults f]");
    let mut table = Table::new(vec![
        "f".into(),
        "mean k".into(),
        "median T".into(),
        "p95 T".into(),
        "max T".into(),
    ]);
    let ring = RingOfTraps::new(n);
    let fs: Vec<usize> = if ssr_bench::quick() {
        vec![1, 4, 16]
    } else {
        vec![1, 2, 4, 8, 16, 32, 64, 128]
    };
    let mut medians = Vec::new();
    for &f in &fs {
        let (times, mean_k) = recovery_times(&ring, f, t, 9_000 + f as u64);
        let s = Summary::of(&times);
        medians.push(s.median);
        table.add_row(vec![
            f.to_string(),
            format!("{mean_k:.1}"),
            format!("{:.0}", s.median),
            format!("{:.0}", s.p95),
            format!("{:.0}", s.max),
        ]);
    }
    print!("{}", table.render());
    let monotone_ish = medians.windows(2).filter(|w| w[1] >= w[0]).count();
    println!(
        "recovery grows with f in {monotone_ish}/{} consecutive steps; \
         T(f_max)/T(1) = {:.1} (k-linear ceiling would allow {:.0})",
        medians.len() - 1,
        medians.last().unwrap() / medians[0],
        *fs.last().unwrap() as f64
    );

    // (2) Fixed f, sweep n.
    let f = 4usize;
    println!("\n[ring of traps, f = {f}: recovery parallel time vs n]");
    let ns = grid(&[110.0, 240.0, 506.0, 1056.0, 2162.0], &[110.0, 240.0]);
    let mut table = Table::new(vec!["n".into(), "median T".into(), "max T".into()]);
    let mut meds = Vec::new();
    for &nf in &ns {
        let p = RingOfTraps::new(nf as usize);
        let (times, _) = recovery_times(&p, f, t, 11_000 + nf as u64);
        let s = Summary::of(&times);
        meds.push(s.median);
        table.add_row(vec![
            (nf as usize).to_string(),
            format!("{:.0}", s.median),
            format!("{:.0}", s.max),
        ]);
    }
    print!("{}", table.render());
    let fit = fit_power_law(&ns, &meds);
    println!(
        "fit: median ≈ {:.3}·n^{:.2} (R² = {:.3}); theory ceiling O(k·n^1.5)",
        fit.constant, fit.exponent, fit.r_squared
    );
    verdict("EF recovery exponent (few faults)", fit.exponent, 1.0, 1.8);

    // (3) Cross-protocol healing at fixed (n, f).
    let f = 8usize;
    println!("\n[cross-protocol: median recovery at n = {n}, f = {f}]");
    let mut table = Table::new(vec![
        "protocol".into(),
        "x".into(),
        "median T".into(),
        "vs A_G".into(),
    ]);
    let generic = GenericRanking::new(n);
    let tree = TreeRanking::new(n);
    let (gt, _) = recovery_times(&generic, f, t, 13_000);
    let g_med = Summary::of(&gt).median;
    for (name, times, x) in [
        ("A_G", gt.clone(), 0usize),
        ("ring", recovery_times(&ring, f, t, 13_100).0, 0),
        ("tree", recovery_times(&tree, f, t, 13_200).0, tree.num_extra_states()),
    ] {
        let s = Summary::of(&times);
        table.add_row(vec![
            name.into(),
            x.to_string(),
            format!("{:.0}", s.median),
            format!("{:.2}×", s.median / g_med),
        ]);
    }
    print!("{}", table.render());
    println!(
        "expected ordering: tree ≪ ring ≤ A_G — silent protocols with more \
         extra states heal faster, exactly the paper's trade-off"
    );
}
