//! # ssr-bench — experiment harness
//!
//! Shared helpers for the experiment binaries in `src/bin/`, each of which
//! regenerates one of the paper's tables or figures (see DESIGN.md §4 for
//! the experiment index and EXPERIMENTS.md for recorded results):
//!
//! | Binary | Paper artefact |
//! |--------|----------------|
//! | `exp_baseline` | E0 — `Θ(n²)` generic protocol `A_G` |
//! | `exp_theorem1` | E1 — ring of traps, `O(min(k·n^{3/2}, n² log² n))` |
//! | `exp_theorem2` | E2 — line of traps, `O(n^{7/4} log² n)` with `x = 1` |
//! | `exp_theorem3` | E3 — tree of ranks, `O(n log n)` with `x = O(log n)` |
//! | `exp_lemma1`   | L1/L2 — trap release and tidiness timing |
//! | `exp_figures`  | F1/F2 — routing graph `G` and the tree of ranks |
//! | `exp_faults`   | EF — transient-fault recovery (Theorem 1, operational) |
//! | `exp_loose`    | EL — loose stabilisation trade-off (related work) |
//! | `exp_schedulers` | ES — non-uniform scheduler robustness |
//! | `exp_scale`    | E3+ — Theorem 3 across two more decades of `n` |
//!
//! Set `SSR_QUICK=1` to shrink grids for smoke runs. Criterion micro
//! benches live in `benches/`.

use ssr_analysis::sweep::SweepResult;
use ssr_engine::protocol::{InteractionSchema, Protocol, State};
use ssr_engine::rng::Xoshiro256;

/// True when `SSR_QUICK` is set: experiment binaries shrink their grids.
pub fn quick() -> bool {
    std::env::var_os("SSR_QUICK").is_some()
}

/// Worker threads requested via `SSR_THREADS` (0 = auto, the default) —
/// passed through to [`Scenario::threads`](ssr_engine::Scenario::threads)
/// by the experiment binaries. Results are seed-deterministic regardless.
pub fn threads() -> usize {
    std::env::var("SSR_THREADS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0)
}

/// Peak resident-set size of this process in bytes (Linux `VmHWM`), if
/// the platform exposes it. Monotonic over the process lifetime — in a
/// grid that grows `n`, the value after the largest point is the number
/// that matters.
pub fn peak_rss_bytes() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmHWM:") {
            let kb: u64 = rest.trim().trim_end_matches("kB").trim().parse().ok()?;
            return Some(kb * 1024);
        }
    }
    None
}

/// Human-readable byte count (binary units).
pub fn format_bytes(bytes: u64) -> String {
    const UNITS: [&str; 5] = ["B", "KiB", "MiB", "GiB", "TiB"];
    let mut v = bytes as f64;
    let mut unit = 0;
    while v >= 1024.0 && unit + 1 < UNITS.len() {
        v /= 1024.0;
        unit += 1;
    }
    format!("{v:.1} {}", UNITS[unit])
}

/// Pick `full` or `short` grid depending on [`quick`].
pub fn grid(full: &[f64], short: &[f64]) -> Vec<f64> {
    if quick() {
        short.to_vec()
    } else {
        full.to_vec()
    }
}

/// Trials per grid point, halved (min 4) in quick mode.
pub fn trials(full: usize) -> usize {
    if quick() {
        (full / 2).max(4)
    } else {
        full
    }
}

/// Banner for one experiment.
pub fn print_header(id: &str, claim: &str) {
    println!("==============================================================");
    println!("{id}");
    println!("paper claim: {claim}");
    println!("==============================================================");
}

/// Uniform-random start over the protocol's full state space — the
/// paper's "arbitrary initial configuration".
pub fn uniform_start<P: Protocol>(p: &P, seed: u64) -> Vec<State> {
    let mut rng = Xoshiro256::seed_from_u64(seed);
    ssr_engine::init::uniform_random(p.population_size(), p.num_states(), &mut rng)
}

/// Everyone stacked in rank state 0 — the classic adversarial start.
pub fn stacked_start<P: Protocol>(p: &P, _seed: u64) -> Vec<State> {
    vec![0; p.population_size()]
}

/// Print a sweep with its power-law fit and return the fitted exponent.
pub fn report_sweep(label: &str, x_name: &str, res: &SweepResult) -> f64 {
    println!("\n[{label}]");
    print!("{}", res.to_table(x_name).render());
    if res.rows.len() >= 2 && res.rows.iter().all(|r| r.median > 0.0) {
        let fit = res.fit_median();
        println!(
            "power-law fit: median ≈ {:.3} · {x_name}^{:.2}   (R² = {:.3})",
            fit.constant, fit.exponent, fit.r_squared
        );
        fit.exponent
    } else {
        println!("power-law fit: skipped (insufficient successful points)");
        f64::NAN
    }
}

/// Verdict line comparing a fitted exponent against the theory.
pub fn verdict(what: &str, measured: f64, lo: f64, hi: f64) {
    let ok = measured.is_finite() && measured >= lo && measured <= hi;
    println!(
        "VERDICT {}: exponent {measured:.2} vs theory window [{lo:.2}, {hi:.2}] → {}",
        what,
        if ok { "MATCHES" } else { "CHECK" }
    );
}

/// Convenience: mean stabilisation parallel time over `trials` runs from a
/// fixed start generator, with automatic engine selection by `n`.
pub fn mean_parallel_time<P, F>(p: &P, make: F, n_trials: usize, base_seed: u64) -> f64
where
    P: InteractionSchema + Sync,
    F: Fn(&P, u64) -> Vec<State> + Sync,
{
    let make = |seed| make(p, seed);
    let res = ssr_engine::Scenario::new(p)
        .init(ssr_engine::Init::Custom(&make))
        .trials(n_trials)
        .base_seed(base_seed)
        .run();
    let times = res.parallel_times();
    times.iter().sum::<f64>() / times.len().max(1) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssr_core::generic::GenericRanking;

    #[test]
    fn grid_respects_quick() {
        // quick() depends on the environment; exercise both code paths
        // through the helper with explicit data.
        let full = [1.0, 2.0, 3.0];
        let short = [1.0];
        let g = grid(&full, &short);
        assert!(g == full.to_vec() || g == short.to_vec());
    }

    #[test]
    fn starts_are_valid() {
        let p = GenericRanking::new(10);
        assert_eq!(stacked_start(&p, 0), vec![0; 10]);
        let u = uniform_start(&p, 1);
        assert_eq!(u.len(), 10);
        assert!(u.iter().all(|&s| (s as usize) < 10));
    }

    #[test]
    fn mean_time_positive_for_stacked_ag() {
        let p = GenericRanking::new(12);
        let t = mean_parallel_time(&p, stacked_start, 4, 3);
        assert!(t > 0.0);
    }
}
