//! Vendored, dependency-free shim of the [proptest](https://crates.io/crates/proptest)
//! macro surface used by this workspace.
//!
//! The build environment has no network access, so the real crate cannot be
//! fetched. This shim implements the subset the test suites rely on:
//!
//! * the [`proptest!`] macro (with an optional
//!   `#![proptest_config(ProptestConfig::with_cases(n))]` inner attribute);
//! * range strategies (`0usize..200`, `0.0f64..1.0`, …), tuple strategies,
//!   [`any`], and `prop::collection::vec`;
//! * [`prop_assert!`], [`prop_assert_eq!`], [`prop_assert_ne!`].
//!
//! Semantics differ from real proptest in two deliberate ways: case
//! generation is **deterministic** (seeded from the test name, so failures
//! reproduce without a persistence file) and there is **no shrinking** — a
//! failing case reports the case index and message and panics immediately.

#![allow(dead_code)]

use std::ops::Range;

/// Configuration accepted by `#![proptest_config(...)]`.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` generated inputs per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

pub mod test_runner {
    //! Minimal test-runner plumbing: the deterministic RNG handed to
    //! strategies and the error type produced by `prop_assert!`.

    /// A failed property case (message only; no shrinking).
    #[derive(Debug, Clone)]
    pub struct TestCaseError(pub String);

    impl TestCaseError {
        /// Build a failure from a message.
        pub fn fail(msg: String) -> Self {
            TestCaseError(msg)
        }
    }

    /// SplitMix64-based deterministic generator for strategy sampling.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Derive a generator from a test name and case index.
        pub fn deterministic(name: &str, case: u64) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            TestRng {
                state: h ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15),
            }
        }

        /// Next raw 64-bit value (SplitMix64).
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform value in `[0, bound)`.
        pub fn below(&mut self, bound: u64) -> u64 {
            assert!(bound > 0);
            ((self.next_u64() as u128 * bound as u128) >> 64) as u64
        }

        /// Uniform `f64` in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
}

use test_runner::TestRng;

/// A value generator: the shim's strategies only sample (no shrinking).
pub trait Strategy {
    /// The type of generated values.
    type Value;
    /// Draw one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }
    )*};
}
impl_int_range_strategy!(u8, u16, u32, usize);

impl Strategy for Range<u64> {
    type Value = u64;
    fn sample(&self, rng: &mut TestRng) -> u64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.below(self.end - self.start)
    }
}

macro_rules! impl_signed_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}
impl_signed_range_strategy!(i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($name:ident . $idx:tt),+);)*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}
impl_tuple_strategy! {
    (A.0);
    (A.0, B.1);
    (A.0, B.1, C.2);
    (A.0, B.1, C.2, D.3);
    (A.0, B.1, C.2, D.3, E.4);
    (A.0, B.1, C.2, D.3, E.4, F.5);
}

/// Marker returned by [`any`]: samples the full domain of `T`.
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(std::marker::PhantomData<T>);

/// Strategy over the entire domain of `T` (`any::<u64>()` etc.).
pub fn any<T>() -> Any<T>
where
    Any<T>: Strategy,
{
    Any(std::marker::PhantomData)
}

macro_rules! impl_any_uint {
    ($($t:ty),*) => {$(
        impl Strategy for Any<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_any_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Any<bool> {
    type Value = bool;
    fn sample(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Strategy for Any<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        rng.unit_f64()
    }
}

pub mod prop {
    //! The `prop::` namespace (collection strategies).

    pub mod collection {
        //! Collection strategies (`prop::collection::vec`).

        use super::super::{test_runner::TestRng, Strategy};
        use std::ops::Range;

        /// Strategy producing `Vec`s of values from an element strategy.
        #[derive(Debug, Clone)]
        pub struct VecStrategy<S> {
            element: S,
            len: Range<usize>,
        }

        /// `Vec` strategy with lengths drawn from `len`.
        pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
            VecStrategy { element, len }
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let n = self.len.sample(rng);
                (0..n).map(|_| self.element.sample(rng)).collect()
            }
        }
    }
}

/// Everything a property-test file needs in scope.
pub mod prelude {
    pub use crate::prop;
    pub use crate::test_runner::TestCaseError;
    pub use crate::{any, prop_assert, prop_assert_eq, prop_assert_ne, proptest};
    pub use crate::{ProptestConfig, Strategy};
}

/// Fail the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// Fail the current case unless the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (lhs, rhs) = (&$a, &$b);
        $crate::prop_assert!(
            *lhs == *rhs,
            "assertion failed: `{} == {}` (left: `{:?}`, right: `{:?}`)",
            stringify!($a), stringify!($b), lhs, rhs
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (lhs, rhs) = (&$a, &$b);
        $crate::prop_assert!(
            *lhs == *rhs,
            "{} (left: `{:?}`, right: `{:?}`)",
            format!($($fmt)*), lhs, rhs
        );
    }};
}

/// Fail the current case if the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (lhs, rhs) = (&$a, &$b);
        $crate::prop_assert!(
            *lhs != *rhs,
            "assertion failed: `{} != {}` (both: `{:?}`)",
            stringify!($a), stringify!($b), lhs
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (lhs, rhs) = (&$a, &$b);
        $crate::prop_assert!(
            *lhs != *rhs,
            "{} (both: `{:?}`)",
            format!($($fmt)*), lhs
        );
    }};
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    ($cfg:expr; $(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            for case in 0..config.cases {
                let mut rng = $crate::test_runner::TestRng::deterministic(
                    concat!(module_path!(), "::", stringify!($name)),
                    case as u64,
                );
                $(
                    let $arg = $crate::Strategy::sample(&($strat), &mut rng);
                )+
                let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| { $body ::std::result::Result::Ok(()) })();
                if let ::std::result::Result::Err(err) = outcome {
                    panic!(
                        "property '{}' failed at case {}/{}: {}",
                        stringify!($name), case + 1, config.cases, err.0
                    );
                }
            }
        }
    };
}

/// The `proptest!` block macro: each contained `fn name(arg in strategy, …)`
/// becomes a `#[test]` running `cases` deterministic samples.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        )+
    ) => {
        $(
            $crate::__proptest_body! {
                $cfg;
                $(#[$meta])*
                fn $name($($arg in $strat),+) $body
            }
        )+
    };
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        )+
    ) => {
        $(
            $crate::__proptest_body! {
                ::std::default::Default::default();
                $(#[$meta])*
                fn $name($($arg in $strat),+) $body
            }
        )+
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 3usize..10, y in 5u64..6) {
            prop_assert!((3..10).contains(&x));
            prop_assert_eq!(y, 5);
        }

        #[test]
        fn vec_lengths_respected(v in prop::collection::vec((0usize..4, 0u64..9), 2..7)) {
            prop_assert!(v.len() >= 2 && v.len() < 7);
            for (a, b) in v {
                prop_assert!(a < 4);
                prop_assert!(b < 9);
            }
        }

        #[test]
        fn any_is_callable(s in any::<u64>(), f in 0.0f64..1.0) {
            let _ = s;
            prop_assert!((0.0..1.0).contains(&f));
        }
    }

    proptest! {
        #[test]
        fn default_config_runs(x in 0u32..7) {
            prop_assert_ne!(x, 99);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = crate::test_runner::TestRng::deterministic("t", 3);
        let mut b = crate::test_runner::TestRng::deterministic("t", 3);
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failing_property_panics_with_case_info() {
        crate::__proptest_body! {
            crate::ProptestConfig::with_cases(4);
            fn always_fails(x in 0u32..10) {
                crate::prop_assert!(x > 1000, "x was {}", x);
            }
        }
        always_fails();
    }
}
