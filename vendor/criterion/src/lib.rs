//! Vendored, dependency-free shim of the [criterion](https://crates.io/crates/criterion)
//! benchmarking API used by this workspace.
//!
//! The build environment has no network access, so the real crate cannot be
//! fetched. The shim keeps the API the benches use (`criterion_group!`,
//! `criterion_main!`, benchmark groups, `iter`, `iter_batched`,
//! `Throughput`, `BatchSize`) and implements honest — if statistically
//! simpler — wall-clock measurement:
//!
//! * each benchmark is warmed up, then timed over `sample_size` samples
//!   whose iteration counts are auto-calibrated to ≥ ~5 ms per sample;
//! * results print as `name  time/iter [min .. max]  (throughput)`;
//! * on exit, all results are written as `BENCH_<target>.json` next to the
//!   current working directory (override the path with `SSR_BENCH_JSON`).
//!
//! There is no outlier analysis and no HTML report; numbers are means over
//! samples, suitable for the coarse engine-vs-engine comparisons recorded
//! in the repo.

#![allow(dead_code)]

use std::time::{Duration, Instant};

/// Per-sample iteration-count hinting (ignored beyond setup amortisation).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small inputs: batch many iterations per setup.
    SmallInput,
    /// Large inputs: one iteration per setup.
    LargeInput,
    /// Per-iteration setup.
    PerIteration,
}

/// Work-per-iteration declaration, used to derive throughput numbers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// `n` abstract elements processed per iteration.
    Elements(u64),
    /// `n` bytes processed per iteration.
    Bytes(u64),
}

/// One finished measurement.
#[derive(Debug, Clone)]
pub struct BenchResult {
    /// `group/name` identifier.
    pub id: String,
    /// Mean nanoseconds per iteration.
    pub mean_ns: f64,
    /// Fastest sample (ns/iter).
    pub min_ns: f64,
    /// Slowest sample (ns/iter).
    pub max_ns: f64,
    /// Samples taken.
    pub samples: usize,
    /// Iterations per sample.
    pub iters_per_sample: u64,
    /// Elements (or bytes) per iteration, if declared.
    pub throughput: Option<Throughput>,
}

impl BenchResult {
    fn elements_per_sec(&self) -> Option<f64> {
        match self.throughput {
            Some(Throughput::Elements(n)) | Some(Throughput::Bytes(n)) => {
                Some(n as f64 / (self.mean_ns * 1e-9))
            }
            None => None,
        }
    }

    fn to_json(&self) -> String {
        let tp = match self.elements_per_sec() {
            Some(eps) => format!(", \"elements_per_sec\": {eps:.1}"),
            None => String::new(),
        };
        format!(
            "{{\"id\": \"{}\", \"mean_ns\": {:.1}, \"min_ns\": {:.1}, \"max_ns\": {:.1}, \
             \"samples\": {}, \"iters_per_sample\": {}{}}}",
            self.id, self.mean_ns, self.min_ns, self.max_ns, self.samples,
            self.iters_per_sample, tp
        )
    }
}

/// Top-level benchmark driver; collects results and writes the JSON summary.
pub struct Criterion {
    results: Vec<BenchResult>,
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            results: Vec::new(),
            default_sample_size: 10,
        }
    }
}

impl Criterion {
    /// Fresh driver with default settings.
    pub fn new() -> Self {
        Self::default()
    }

    /// Open a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
            sample_size: None,
        }
    }

    /// Benchmark a function outside any group.
    pub fn bench_function(
        &mut self,
        name: impl Into<String>,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let id = name.into();
        let sample_size = self.default_sample_size;
        let result = run_benchmark(&id, None, sample_size, &mut f);
        report(&result);
        self.results.push(result);
        self
    }

    /// All results measured so far.
    pub fn results(&self) -> &[BenchResult] {
        &self.results
    }

    /// Write the JSON summary. Called automatically by [`criterion_main!`].
    pub fn finalize(&self) {
        let path = std::env::var("SSR_BENCH_JSON").unwrap_or_else(|_| {
            let stem = std::env::args()
                .next()
                .and_then(|p| {
                    std::path::Path::new(&p)
                        .file_stem()
                        .map(|s| s.to_string_lossy().into_owned())
                })
                .unwrap_or_else(|| "bench".into());
            // Cargo appends `-<hash>` to bench executables; strip it.
            let stem = match stem.rsplit_once('-') {
                Some((base, hash)) if hash.len() == 16 && hash.bytes().all(|b| b.is_ascii_hexdigit()) => {
                    base.to_string()
                }
                _ => stem,
            };
            format!("BENCH_{stem}.json")
        });
        let body: Vec<String> = self.results.iter().map(|r| format!("  {}", r.to_json())).collect();
        let json = format!("[\n{}\n]\n", body.join(",\n"));
        if let Err(e) = std::fs::write(&path, json) {
            eprintln!("criterion shim: could not write {path}: {e}");
        } else {
            println!("\nbench summary written to {path}");
        }
    }
}

/// A named group of benchmarks sharing throughput/sample settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Declare work-per-iteration for throughput reporting.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Number of timed samples per benchmark in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n.max(2));
        self
    }

    /// Benchmark a function within this group.
    pub fn bench_function(
        &mut self,
        name: impl Into<String>,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let id = format!("{}/{}", self.name, name.into());
        let sample_size = self
            .sample_size
            .unwrap_or(self.criterion.default_sample_size);
        let result = run_benchmark(&id, self.throughput, sample_size, &mut f);
        report(&result);
        self.criterion.results.push(result);
        self
    }

    /// Close the group (kept for API compatibility).
    pub fn finish(self) {}
}

/// Handed to each benchmark closure; runs the measurement loop.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `iters` invocations of `routine`.
    pub fn iter<R>(&mut self, mut routine: impl FnMut() -> R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    /// Time `iters` invocations of `routine`, excluding per-input `setup`.
    pub fn iter_batched<I, R>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> R,
        _size: BatchSize,
    ) {
        let mut total = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            std::hint::black_box(routine(input));
            total += start.elapsed();
        }
        self.elapsed = total;
    }
}

fn run_benchmark(
    id: &str,
    throughput: Option<Throughput>,
    sample_size: usize,
    f: &mut impl FnMut(&mut Bencher),
) -> BenchResult {
    // Calibrate: one iteration to estimate cost, aiming at ≥ ~5 ms/sample,
    // capped so a whole benchmark stays under ~2 s of measurement.
    let mut bench = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    f(&mut bench);
    let est_ns = bench.elapsed.as_nanos().max(1) as f64;
    let iters = ((5e6 / est_ns).ceil() as u64).clamp(1, 10_000_000);
    let budget_ns = 2e9;
    let samples = sample_size
        .min((budget_ns / (est_ns * iters as f64)).ceil() as usize)
        .max(2);

    let mut per_iter: Vec<f64> = Vec::with_capacity(samples);
    for _ in 0..samples {
        let mut bench = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut bench);
        per_iter.push(bench.elapsed.as_nanos() as f64 / iters as f64);
    }
    let mean_ns = per_iter.iter().sum::<f64>() / per_iter.len() as f64;
    let min_ns = per_iter.iter().cloned().fold(f64::INFINITY, f64::min);
    let max_ns = per_iter.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    BenchResult {
        id: id.to_string(),
        mean_ns,
        min_ns,
        max_ns,
        samples,
        iters_per_sample: iters,
        throughput,
    }
}

fn report(r: &BenchResult) {
    let human = |ns: f64| -> String {
        if ns < 1e3 {
            format!("{ns:.1} ns")
        } else if ns < 1e6 {
            format!("{:.2} µs", ns / 1e3)
        } else if ns < 1e9 {
            format!("{:.2} ms", ns / 1e6)
        } else {
            format!("{:.2} s", ns / 1e9)
        }
    };
    let tp = match r.elements_per_sec() {
        Some(eps) if eps >= 1e6 => format!("  ({:.2} Melem/s)", eps / 1e6),
        Some(eps) => format!("  ({eps:.0} elem/s)"),
        None => String::new(),
    };
    println!(
        "{:<48} {:>12}/iter  [{} .. {}]{}",
        r.id,
        human(r.mean_ns),
        human(r.min_ns),
        human(r.max_ns),
        tp
    );
}

/// Re-export for call sites that import it from criterion.
pub use std::hint::black_box;

/// Declare a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group(c: &mut $crate::Criterion) {
            $( $target(c); )+
        }
    };
}

/// Generate a `main` that runs the listed groups and writes the summary.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::Criterion::new();
            $( $group(&mut c); )+
            c.finalize();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_and_records() {
        let mut c = Criterion::new();
        let mut group = c.benchmark_group("g");
        group.sample_size(3);
        group.throughput(Throughput::Elements(10));
        group.bench_function("noop", |b| b.iter(|| 1 + 1));
        group.finish();
        c.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 16], |v| v.len(), BatchSize::SmallInput)
        });
        assert_eq!(c.results().len(), 2);
        assert!(c.results()[0].id.starts_with("g/"));
        assert!(c.results()[0].mean_ns >= 0.0);
        assert!(c.results()[0].to_json().contains("elements_per_sec"));
    }
}
