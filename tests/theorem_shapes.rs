//! Cheap complexity-shape checks that run in the normal test suite
//! (the full-scale versions live in the `ssr-bench` experiment binaries).
//! These guard against regressions that would silently destroy the
//! paper's separations.

use ssr::prelude::*;

fn median_time<P: InteractionSchema + Sync>(p: &P, trials: usize, seed: u64) -> f64 {
    let cfg = TrialConfig::new(trials).with_base_seed(seed);
    let res = run_trials(
        p,
        |s| {
            let mut rng = Xoshiro256::seed_from_u64(s);
            init::uniform_random(p.population_size(), p.num_states(), &mut rng)
        },
        &cfg,
    );
    Summary::of(&res.parallel_times()).median
}

/// Theorem 3's separation: at moderate n the tree protocol must already
/// beat the Θ(n²) baseline by a wide margin.
#[test]
fn tree_beats_baseline_by_a_wide_margin() {
    let n = 512;
    let t_tree = median_time(&TreeRanking::new(n), 8, 1);
    let t_ag = median_time(&GenericRanking::new(n), 8, 2);
    assert!(
        t_ag > 10.0 * t_tree,
        "expected ≥10x separation at n={n}: A_G {t_ag:.0} vs tree {t_tree:.0}"
    );
}

/// Theorem 1's selling point: recovering from 1 fault is much cheaper
/// than ranking from an arbitrary configuration.
#[test]
fn small_k_recovery_beats_arbitrary_start() {
    let n = 506;
    let p = RingOfTraps::new(n);
    let cfg = TrialConfig::new(8).with_base_seed(3);
    let kd = run_trials(
        &p,
        |s| {
            let mut rng = Xoshiro256::seed_from_u64(s);
            init::k_distant(n, 1, init::DuplicatePlacement::Random, &mut rng)
        },
        &cfg,
    );
    let t_k1 = Summary::of(&kd.parallel_times()).median;
    let t_arb = median_time(&p, 8, 4);
    assert!(
        t_arb > 2.0 * t_k1,
        "1-distant {t_k1:.0} should beat arbitrary {t_arb:.0} clearly"
    );
}

/// A_G doubling check: quadrupling work per doubled n (ratio in [2.8, 5.5]
/// leaves room for noise at these sizes).
#[test]
fn baseline_is_quadratic_shaped() {
    let t256 = median_time(&GenericRanking::new(256), 8, 5);
    let t512 = median_time(&GenericRanking::new(512), 8, 6);
    let ratio = t512 / t256;
    assert!(
        (2.8..5.5).contains(&ratio),
        "doubling n should ~4x the time, got {ratio:.2}"
    );
}

/// Tree doubling check: near-linear growth (ratio ≈ 2, well below 3).
#[test]
fn tree_is_near_linear_shaped() {
    let t1k = median_time(&TreeRanking::new(1024), 8, 7);
    let t2k = median_time(&TreeRanking::new(2048), 8, 8);
    let ratio = t2k / t1k;
    assert!(
        (1.5..3.0).contains(&ratio),
        "doubling n should ~2x the time, got {ratio:.2}"
    );
}

/// Theorem 2's direction: the line protocol beats A_G at n = 960.
#[test]
fn line_beats_baseline_at_moderate_n() {
    let n = 960;
    let t_line = median_time(&LineOfTraps::new(n), 6, 9);
    let t_ag = median_time(&GenericRanking::new(n), 6, 10);
    assert!(
        t_line < t_ag,
        "line {t_line:.0} should already beat A_G {t_ag:.0} at n={n}"
    );
}
