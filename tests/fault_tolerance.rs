//! Fault-tolerance campaign: transient corruption injected *mid-convergence*
//! (not just at silent configurations) never prevents eventual silent
//! ranking — the defining property of self-stabilisation.

// Audited: tests cast tiny bounded f64/u64 values (n <= 10^4) to usize/u32.
#![allow(clippy::cast_possible_truncation)]

use ssr::engine::observer::NullObserver;
use ssr::prelude::*;

fn campaign<P: Protocol>(p: &P, seed: u64, bursts: usize) {
    let n = p.population_size();
    let mut rng = Xoshiro256::seed_from_u64(seed);
    let start = init::uniform_random(n, p.num_states(), &mut rng);
    let mut sim = Simulation::new(p, start, seed ^ 0xF00D).unwrap();

    for burst in 0..bursts {
        // Let the protocol make partial progress (well short of silence).
        sim.run_for((n as u64) * 50, &mut NullObserver);
        // Corrupt a random subset mid-flight, including into extra states.
        let faults = 1 + rng.below_usize(n / 3 + 1);
        for _ in 0..faults {
            let victim = rng.below_usize(n);
            let garbage = rng.below(p.num_states() as u64) as State;
            sim.inject_fault(victim, garbage);
        }
        let _ = burst;
    }
    sim.run_until_silent(u64::MAX)
        .unwrap_or_else(|e| panic!("{}: {e}", p.name()));
    assert!(
        init::is_perfect_ranking(sim.agents(), n),
        "{}: final configuration is not a perfect ranking",
        p.name()
    );
    assert!(sim.verify_silent(), "{}", p.name());
}

#[test]
fn generic_survives_mid_convergence_faults() {
    campaign(&GenericRanking::new(40), 1, 5);
}

#[test]
fn ring_survives_mid_convergence_faults() {
    campaign(&RingOfTraps::new(40), 2, 5);
}

#[test]
fn line_survives_mid_convergence_faults() {
    campaign(&LineOfTraps::new(40), 3, 5);
}

#[test]
fn tree_survives_mid_convergence_faults() {
    campaign(&TreeRanking::new(40), 4, 5);
}

/// Corrupting *every* agent simultaneously (total state loss) is just
/// another arbitrary configuration: recovery must still happen.
#[test]
fn total_corruption_is_recoverable() {
    let n = 30;
    let protos: Vec<Box<dyn Protocol>> = vec![
        Box::new(GenericRanking::new(n)),
        Box::new(RingOfTraps::new(n)),
        Box::new(LineOfTraps::new(n)),
        Box::new(TreeRanking::new(n)),
    ];
    let mut rng = Xoshiro256::seed_from_u64(99);
    for p in &protos {
        let mut sim = Simulation::new(p.as_ref(), init::perfect_ranking(n), 7).unwrap();
        assert!(sim.is_silent());
        for agent in 0..n {
            let garbage = rng.below(p.num_states() as u64) as State;
            sim.inject_fault(agent, garbage);
        }
        sim.run_until_silent(u64::MAX)
            .unwrap_or_else(|e| panic!("{}: {e}", p.name()));
        assert!(init::is_perfect_ranking(sim.agents(), n), "{}", p.name());
    }
}

/// Snapshot-branching: a trajectory interrupted by faults and one left
/// alone both stabilise; the unperturbed branch replays deterministically.
#[test]
fn snapshot_branching_with_faults() {
    let n = 24;
    let p = TreeRanking::new(n);
    let mut sim = Simulation::new(&p, vec![0; n], 11).unwrap();
    sim.run_for(500, &mut NullObserver);
    let snap = sim.snapshot();

    // Branch 1: undisturbed.
    let rep1 = sim.run_until_silent(u64::MAX).unwrap();

    // Branch 2: restore, inject faults, still stabilises.
    sim.restore(&snap);
    sim.inject_fault(0, p.x(1));
    sim.inject_fault(1, p.x(p.buffer_half() * 2));
    sim.run_until_silent(u64::MAX).unwrap();
    assert!(init::is_perfect_ranking(sim.agents(), n));

    // Branch 3: restore again, replay branch 1 exactly.
    sim.restore(&snap);
    let rep3 = sim.run_until_silent(u64::MAX).unwrap();
    assert_eq!(rep1.interactions, rep3.interactions);
}
