//! Leader election built on ranking: liveness, uniqueness, and recovery
//! from transient faults — for every protocol.

// Audited: tests cast tiny bounded f64/u64 values (n <= 10^4) to usize/u32.
#![allow(clippy::cast_possible_truncation)]

use ssr::prelude::*;

#[test]
fn every_protocol_elects_exactly_one_leader() {
    let mut rng = Xoshiro256::seed_from_u64(3);
    let n = 36;
    let generic = GenericRanking::new(n);
    let ring = RingOfTraps::new(n);
    let line = LineOfTraps::new(n);
    let tree = TreeRanking::new(n);
    let protos: Vec<&dyn Protocol> = vec![&generic, &ring, &line, &tree];
    for p in protos {
        let cfg = init::uniform_random(n, p.num_states(), &mut rng);
        let out = elect_leader(p, cfg, 21, u64::MAX)
            .unwrap_or_else(|e| panic!("{}: {e}", p.name()));
        assert!(out.leader < n, "{}", p.name());
    }
}

#[test]
fn repeated_fault_injection_always_recovers() {
    let n = 40;
    let p = RingOfTraps::new(n);
    let mut rng = Xoshiro256::seed_from_u64(7);
    let mut sim = Simulation::new(&p, init::perfect_ranking(n), 5).unwrap();
    for round in 0..8 {
        // Corrupt a random subset.
        let faults = 1 + rng.below_usize(n / 2);
        for _ in 0..faults {
            let victim = rng.below_usize(n);
            let garbage = rng.below(n as u64) as State;
            sim.inject_fault(victim, garbage);
        }
        sim.run_until_silent(u64::MAX)
            .unwrap_or_else(|e| panic!("round {round}: {e}"));
        assert!(
            init::is_perfect_ranking(sim.agents(), n),
            "round {round}: bad ranking"
        );
        let leaders = sim.agents().iter().filter(|&&s| s == LEADER_RANK).count();
        assert_eq!(leaders, 1, "round {round}: {leaders} leaders");
    }
}

#[test]
fn leadership_is_stable_once_elected() {
    let n = 25;
    let p = TreeRanking::new(n);
    let out = elect_leader(&p, vec![0; n], 9, u64::MAX).unwrap();
    // Re-run the exact same seed: determinism pins the same leader.
    let out2 = elect_leader(&p, vec![0; n], 9, u64::MAX).unwrap();
    assert_eq!(out.leader, out2.leader);
    assert_eq!(out.report.interactions, out2.report.interactions);
}

#[test]
fn minimal_state_space_claim_holds() {
    // The paper's context: self-stabilising leader election needs ≥ n
    // states. Our state-optimal protocols use exactly n; the near-optimal
    // ones add 1 and O(log n).
    let n = 100;
    assert_eq!(Protocol::num_states(&GenericRanking::new(n)), n);
    assert_eq!(Protocol::num_states(&RingOfTraps::new(n)), n);
    assert_eq!(Protocol::num_states(&LineOfTraps::new(n)), n + 1);
    let tree = TreeRanking::new(n);
    let extras = Protocol::num_extra_states(&tree);
    assert!(extras >= 2 && extras <= 8 * ((n as f64).log2().ceil() as usize));
}
