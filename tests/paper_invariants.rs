//! Executable checks of the paper's Facts and Lemmas, across crates.

// Audited: tests cast tiny bounded f64/u64 values (n <= 10^4) to usize/u32.
#![allow(clippy::cast_possible_truncation)]

use ssr::engine::observer::{FnObserver, TransitionEvent};
use ssr::prelude::*;

/// Lemma 10: `s(C) = d(C)` for every configuration of the line protocol.
#[test]
fn lemma10_surplus_equals_deficit_across_sizes() {
    let mut rng = Xoshiro256::seed_from_u64(10);
    for n in [6usize, 50, 72, 200, 324] {
        let p = LineOfTraps::new(n);
        for trial in 0..10 {
            let cfg = init::uniform_random(n, n + 1, &mut rng);
            let counts = init::counts(&cfg, n + 1);
            assert_eq!(
                p.surplus(&counts),
                p.deficit(&counts),
                "n={n} trial={trial}"
            );
        }
    }
}

/// Tokens never increase on tidy configurations: we track `r(C)` along a
/// trajectory, starting once tidiness (Lemma 2) holds — the paper's token
/// analysis is phrased on tidy configurations — and require the count to
/// be non-increasing except when an X-agent enters a line (which converts
/// an X-token into a line token).
#[test]
fn line_tokens_accounted_along_trajectory() {
    let n = 72;
    let p = LineOfTraps::new(n);
    let mut rng = Xoshiro256::seed_from_u64(11);
    let cfg = init::uniform_random(n, n + 1, &mut rng);
    let mut sim = Simulation::new(&p, cfg, 13).unwrap();
    let mut last: Option<u64> = None;
    let mut tidy_lost = false;
    let mut violations = 0u32;
    {
        let mut obs = FnObserver::new(|_s, ev: &TransitionEvent, counts: &[u32]| {
            if last.is_none() {
                if p.is_tidy(counts) {
                    last = Some(p.tokens(counts));
                }
                return;
            }
            if !p.is_tidy(counts) {
                tidy_lost = true; // Lemma 2: must not happen
                return;
            }
            let now = p.tokens(counts);
            let x_entered_line = ev.before.1 == p.x_state() && ev.after.1 != p.x_state();
            if now > last.unwrap() && !x_entered_line {
                violations += 1;
            }
            last = Some(now);
        });
        sim.run_until_silent_observed(u64::MAX, &mut obs).unwrap();
    }
    assert!(last.is_some(), "trajectory never became tidy");
    assert!(!tidy_lost, "tidiness was lost after being reached");
    assert_eq!(violations, 0, "r(C) grew without an agent entering a line");
}

/// Lemma 19 + §5: from the all-at-root start the dispersal rule alone
/// ranks the population — the reset line is never touched.
#[test]
fn tree_dispersal_from_root_never_resets() {
    let n = 63;
    let p = TreeRanking::new(n);
    let mut sim = Simulation::new(&p, vec![0; n], 17).unwrap();
    let nr = n;
    let mut touched_extra = false;
    {
        let mut obs = FnObserver::new(|_s, _e: &TransitionEvent, counts: &[u32]| {
            if counts[nr..].iter().any(|&c| c > 0) {
                touched_extra = true;
            }
        });
        sim.run_until_silent_observed(u64::MAX, &mut obs).unwrap();
    }
    assert!(
        !touched_extra,
        "balanced (all-at-root) start must rank via R1 alone"
    );
    assert!(init::is_perfect_ranking(sim.agents(), n));
}

/// A leaf-stacked start is unbalanced: the reset line must fire.
#[test]
fn tree_unbalanced_start_triggers_reset() {
    let n = 33;
    let p = TreeRanking::new(n);
    let leaf = p.tree().leaves_iter().next().unwrap() as State;
    let mut sim = Simulation::new(&p, vec![leaf; n], 19).unwrap();
    let nr = n;
    let mut touched_extra = false;
    {
        let mut obs = FnObserver::new(|_s, _e: &TransitionEvent, counts: &[u32]| {
            if counts[nr..].iter().any(|&c| c > 0) {
                touched_extra = true;
            }
        });
        sim.run_until_silent_observed(u64::MAX, &mut obs).unwrap();
    }
    assert!(touched_extra, "overloaded leaf must raise the reset signal");
    assert!(init::is_perfect_ranking(sim.agents(), n));
}

/// The balanced-configuration detector agrees with reality: balanced
/// starts never reset; unbalanced ones always do.
#[test]
fn balance_detector_predicts_resets() {
    let n = 31;
    let p = TreeRanking::new(n);
    let mut rng = Xoshiro256::seed_from_u64(23);
    let mut seen_balanced = 0;
    let mut seen_unbalanced = 0;
    for trial in 0..24 {
        // Mix of rank-only configurations.
        let cfg = init::k_distant(
            n,
            trial % 6,
            init::DuplicatePlacement::Random,
            &mut rng,
        );
        let counts = init::counts(&cfg, p.num_states());
        let predicted_balanced = p.is_balanced(&counts);
        let mut sim = Simulation::new(&p, cfg, 100 + trial as u64).unwrap();
        let nr = n;
        let mut touched_extra = false;
        {
            let mut obs = FnObserver::new(|_s, _e: &TransitionEvent, c: &[u32]| {
                if c[nr..].iter().any(|&x| x > 0) {
                    touched_extra = true;
                }
            });
            sim.run_until_silent_observed(u64::MAX, &mut obs).unwrap();
        }
        if predicted_balanced {
            seen_balanced += 1;
            assert!(!touched_extra, "trial {trial}: balanced start reset");
        } else {
            seen_unbalanced += 1;
            assert!(touched_extra, "trial {trial}: unbalanced start never reset");
        }
    }
    assert!(seen_balanced > 0, "want at least one balanced case (k=0)");
    assert!(seen_unbalanced > 0, "want at least one unbalanced case");
}

/// Figure 1 + §4.2: the routing graph of every line protocol instance is
/// connected with logarithmic diameter, and routing targets are valid.
#[test]
fn line_routing_graph_properties() {
    for n in [72usize, 324, 960] {
        let p = LineOfTraps::new(n);
        let g = p.graph();
        assert!(g.is_connected());
        let m = p.parameter_m() as f64;
        if p.num_lines() >= 8 && p.num_lines().is_multiple_of(2) {
            assert!(g.is_three_regular(), "n={n}");
            assert!(
                g.diameter() as f64 <= 4.0 * m.log2().ceil().max(1.0) + 2.0,
                "n={n} diameter {}",
                g.diameter()
            );
        }
    }
}

/// Fact 2 flavour: saturating a trap with `d` gaps takes ~2d arrivals —
/// checked via the Lemma 5 recursion on a synthetic single line.
#[test]
fn fact2_saturation_needs_double_the_gaps() {
    let p = LineOfTraps::with_parameter(24, 1); // 1 line, 3 traps of size 8
    // Entrance trap (internal index 2) empty: 7 gaps; push agents at the
    // entrance gate via the recursion by placing them there directly.
    let chain = p.line(0);
    let entrance_gate = chain.gate(2) as usize;
    for arrivals in 0..=24u32 {
        let mut counts = vec![0u32; 25];
        counts[entrance_gate] = arrivals;
        let settled = p.settle_line(0, &counts);
        let cap = chain.size(2) - 1;
        // Every other arrival is captured until the inner states fill.
        let expected_inner = (arrivals / 2).min(cap);
        assert_eq!(
            settled.alpha[2], expected_inner,
            "arrivals={arrivals}"
        );
        if arrivals >= 2 * cap {
            assert_eq!(settled.alpha[2], cap, "2d arrivals saturate d gaps");
        }
    }
}
