//! The naive and jump-chain simulators realise the same Markov chain:
//! identical silence semantics and statistically indistinguishable
//! stabilisation-time distributions.

use ssr::prelude::*;

fn mean_time<P: ProductiveClasses>(
    p: &P,
    cfg: &[State],
    trials: u64,
    naive: bool,
    seed0: u64,
) -> f64 {
    let total: u64 = (0..trials)
        .map(|t| {
            if naive {
                let mut s = Simulation::new(p, cfg.to_vec(), seed0 + t).unwrap();
                s.run_until_silent(u64::MAX).unwrap().interactions
            } else {
                let mut s = JumpSimulation::new(p, cfg.to_vec(), seed0 + t).unwrap();
                s.run_until_silent(u64::MAX).unwrap().interactions
            }
        })
        .sum();
    total as f64 / trials as f64
}

#[test]
fn generic_protocol_distributions_match() {
    let p = GenericRanking::new(16);
    let cfg = vec![0; 16];
    let naive = mean_time(&p, &cfg, 150, true, 1000);
    let jump = mean_time(&p, &cfg, 150, false, 5000);
    let rel = (naive - jump).abs() / naive;
    assert!(rel < 0.12, "naive {naive:.0} vs jump {jump:.0} ({rel:.3})");
}

#[test]
fn ring_protocol_distributions_match() {
    let p = RingOfTraps::new(12);
    let cfg = vec![3; 12];
    let naive = mean_time(&p, &cfg, 120, true, 2000);
    let jump = mean_time(&p, &cfg, 120, false, 6000);
    let rel = (naive - jump).abs() / naive;
    assert!(rel < 0.15, "naive {naive:.0} vs jump {jump:.0} ({rel:.3})");
}

#[test]
fn line_protocol_distributions_match() {
    let p = LineOfTraps::new(12);
    let cfg = vec![p.x_state(); 12];
    let naive = mean_time(&p, &cfg, 120, true, 3000);
    let jump = mean_time(&p, &cfg, 120, false, 7000);
    let rel = (naive - jump).abs() / naive;
    assert!(rel < 0.15, "naive {naive:.0} vs jump {jump:.0} ({rel:.3})");
}

#[test]
fn tree_protocol_distributions_match() {
    let p = TreeRanking::new(12);
    let cfg = vec![p.x(1); 12];
    let naive = mean_time(&p, &cfg, 120, true, 4000);
    let jump = mean_time(&p, &cfg, 120, false, 8000);
    let rel = (naive - jump).abs() / naive;
    assert!(rel < 0.15, "naive {naive:.0} vs jump {jump:.0} ({rel:.3})");
}

/// The strongest cross-check: the full stabilisation-time *distributions*
/// of the two simulators pass a two-sample Kolmogorov–Smirnov test.
#[test]
fn distributions_pass_ks_test() {
    use ssr::analysis::ks::ks_two_sample;
    let p = GenericRanking::new(14);
    let cfg = vec![0u32; 14];
    let sample = |naive: bool, seed0: u64| -> Vec<f64> {
        (0..400u64)
            .map(|t| {
                if naive {
                    let mut s = Simulation::new(&p, cfg.clone(), seed0 + t).unwrap();
                    s.run_until_silent(u64::MAX).unwrap().interactions as f64
                } else {
                    let mut s = JumpSimulation::new(&p, cfg.clone(), seed0 + t).unwrap();
                    s.run_until_silent(u64::MAX).unwrap().interactions as f64
                }
            })
            .collect()
    };
    let naive = sample(true, 10_000);
    let jump = sample(false, 20_000);
    let r = ks_two_sample(&naive, &jump);
    assert!(
        r.p_value > 0.001,
        "KS rejected: D = {:.4}, p = {:.5}",
        r.statistic,
        r.p_value
    );
}

#[test]
fn both_simulators_reach_the_same_silent_support() {
    // From the same start, both end in *a* perfect ranking (the specific
    // trajectory differs, but the silent support is unique).
    let mut rng = Xoshiro256::seed_from_u64(5);
    for n in [10usize, 20] {
        let p = TreeRanking::new(n);
        let cfg = init::uniform_random(n, p.num_states(), &mut rng);
        let mut a = Simulation::new(&p, cfg.clone(), 11).unwrap();
        a.run_until_silent(u64::MAX).unwrap();
        let mut b = JumpSimulation::new(&p, cfg, 12).unwrap();
        b.run_until_silent(u64::MAX).unwrap();
        let counts_a = init::counts(a.agents(), p.num_states());
        assert_eq!(counts_a, b.counts(), "silent support must be unique");
    }
}

#[test]
fn jump_simulator_skips_but_never_undercounts() {
    // The jump interaction count must stochastically dominate the number
    // of productive interactions and agree with the naive simulator's
    // ballpark (checked above); here: productive counts are *identical in
    // distribution support* — each protocol needs at least n-1 productive
    // steps to rank a stacked start.
    let n = 20;
    for seed in 0..20 {
        let p = GenericRanking::new(n);
        let mut s = JumpSimulation::new(&p, vec![0; n], seed).unwrap();
        let rep = s.run_until_silent(u64::MAX).unwrap();
        assert!(rep.productive_interactions >= (n - 1) as u64);
        assert!(rep.interactions >= rep.productive_interactions);
    }
}
