//! The naive, jump-chain and count-batched simulators realise the same
//! Markov chain: identical silence semantics and statistically
//! indistinguishable stabilisation-time distributions (pairwise KS tests
//! across all three engines), plus bit-identical jump↔count trajectories
//! per seed when batching is off.

// Audited: tests cast tiny bounded f64/u64 values (n <= 10^4) to usize/u32.
#![allow(clippy::cast_possible_truncation)]

use ssr::prelude::*;

fn mean_time<P: InteractionSchema>(
    p: &P,
    cfg: &[State],
    trials: u64,
    naive: bool,
    seed0: u64,
) -> f64 {
    let total: u64 = (0..trials)
        .map(|t| {
            if naive {
                let mut s = Simulation::new(p, cfg.to_vec(), seed0 + t).unwrap();
                s.run_until_silent(u64::MAX).unwrap().interactions
            } else {
                let mut s = JumpSimulation::new(p, cfg.to_vec(), seed0 + t).unwrap();
                s.run_until_silent(u64::MAX).unwrap().interactions
            }
        })
        .sum();
    total as f64 / trials as f64
}

#[test]
fn generic_protocol_distributions_match() {
    let p = GenericRanking::new(16);
    let cfg = vec![0; 16];
    let naive = mean_time(&p, &cfg, 150, true, 1000);
    let jump = mean_time(&p, &cfg, 150, false, 5000);
    let rel = (naive - jump).abs() / naive;
    assert!(rel < 0.12, "naive {naive:.0} vs jump {jump:.0} ({rel:.3})");
}

#[test]
fn ring_protocol_distributions_match() {
    let p = RingOfTraps::new(12);
    let cfg = vec![3; 12];
    let naive = mean_time(&p, &cfg, 120, true, 2000);
    let jump = mean_time(&p, &cfg, 120, false, 6000);
    let rel = (naive - jump).abs() / naive;
    assert!(rel < 0.15, "naive {naive:.0} vs jump {jump:.0} ({rel:.3})");
}

#[test]
fn line_protocol_distributions_match() {
    let p = LineOfTraps::new(12);
    let cfg = vec![p.x_state(); 12];
    let naive = mean_time(&p, &cfg, 120, true, 3000);
    let jump = mean_time(&p, &cfg, 120, false, 7000);
    let rel = (naive - jump).abs() / naive;
    assert!(rel < 0.15, "naive {naive:.0} vs jump {jump:.0} ({rel:.3})");
}

#[test]
fn tree_protocol_distributions_match() {
    let p = TreeRanking::new(12);
    let cfg = vec![p.x(1); 12];
    let naive = mean_time(&p, &cfg, 120, true, 4000);
    let jump = mean_time(&p, &cfg, 120, false, 8000);
    let rel = (naive - jump).abs() / naive;
    assert!(rel < 0.15, "naive {naive:.0} vs jump {jump:.0} ({rel:.3})");
}

/// The strongest cross-check: the full stabilisation-time *distributions*
/// of the two simulators pass a two-sample Kolmogorov–Smirnov test.
#[test]
fn distributions_pass_ks_test() {
    use ssr::analysis::ks::ks_two_sample;
    let p = GenericRanking::new(14);
    let cfg = vec![0u32; 14];
    let sample = |naive: bool, seed0: u64| -> Vec<f64> {
        (0..400u64)
            .map(|t| {
                if naive {
                    let mut s = Simulation::new(&p, cfg.clone(), seed0 + t).unwrap();
                    s.run_until_silent(u64::MAX).unwrap().interactions as f64
                } else {
                    let mut s = JumpSimulation::new(&p, cfg.clone(), seed0 + t).unwrap();
                    s.run_until_silent(u64::MAX).unwrap().interactions as f64
                }
            })
            .collect()
    };
    let naive = sample(true, 10_000);
    let jump = sample(false, 20_000);
    let r = ks_two_sample(&naive, &jump);
    assert!(
        r.p_value > 0.001,
        "KS rejected: D = {:.4}, p = {:.5}",
        r.statistic,
        r.p_value
    );
}

#[test]
fn both_simulators_reach_the_same_silent_support() {
    // From the same start, both end in *a* perfect ranking (the specific
    // trajectory differs, but the silent support is unique).
    let mut rng = Xoshiro256::seed_from_u64(5);
    for n in [10usize, 20] {
        let p = TreeRanking::new(n);
        let cfg = init::uniform_random(n, p.num_states(), &mut rng);
        let mut a = Simulation::new(&p, cfg.clone(), 11).unwrap();
        a.run_until_silent(u64::MAX).unwrap();
        let mut b = JumpSimulation::new(&p, cfg, 12).unwrap();
        b.run_until_silent(u64::MAX).unwrap();
        let counts_a = init::counts(a.agents(), p.num_states());
        assert_eq!(counts_a, b.counts(), "silent support must be unique");
    }
}

/// Same seed ⇒ the count engine (exact mode) and the jump engine walk the
/// *identical* chain on `A_G`: same productive counts, same interaction
/// clock, same final configuration — not merely the same distribution.
#[test]
fn count_and_jump_are_trace_identical_on_ag() {
    let n = 300;
    let p = GenericRanking::new(n);
    for seed in [1u64, 42, 9000] {
        let mut jump = JumpSimulation::new(&p, vec![0; n], seed).unwrap();
        let mut count = CountSimulation::new(&p, vec![0; n], seed)
            .unwrap()
            .with_batching(false);
        let rj = jump.run_until_silent(u64::MAX).unwrap();
        let rc = count.run_until_silent(u64::MAX).unwrap();
        assert_eq!(
            rj.productive_interactions, rc.productive_interactions,
            "seed {seed}: productive counts must be identical"
        );
        assert_eq!(rj.interactions, rc.interactions, "seed {seed}");
        assert_eq!(jump.counts(), count.counts(), "seed {seed}");
    }
}

/// Batch mode is an approximation only of *which* exchangeable step fires
/// first; the stabilisation-time distribution must be indistinguishable.
/// KS at n = 1000 over 200 trials per engine, stacked start (the regime
/// where batching does the most work).
#[test]
fn count_vs_jump_ks_test_at_n1000() {
    let n = 1000;
    let p = GenericRanking::new(n);
    let trials = 200u64;
    let sample = |kind: EngineKind, seed0: u64| -> Vec<f64> {
        (0..trials)
            .map(|t| {
                let mut e = make_engine(kind, &p, vec![0; n], seed0 + t).unwrap();
                e.run_until_silent(u64::MAX).unwrap().interactions as f64
            })
            .collect()
    };
    let jump = sample(EngineKind::Jump, 40_000);
    let count = sample(EngineKind::Count, 50_000);
    let r = ssr::analysis::ks::ks_two_sample(&jump, &count);
    assert!(
        r.p_value > 0.01,
        "KS rejected jump vs count: D = {:.4}, p = {:.5}",
        r.statistic,
        r.p_value
    );
}

/// Closing the triangle (naive↔jump is tested above): naive vs count at a
/// size the naive engine can afford.
#[test]
fn count_vs_naive_ks_test() {
    let p = GenericRanking::new(14);
    let trials = 400u64;
    let sample = |kind: EngineKind, seed0: u64| -> Vec<f64> {
        (0..trials)
            .map(|t| {
                let mut e = make_engine(kind, &p, vec![0u32; 14], seed0 + t).unwrap();
                e.run_until_silent(u64::MAX).unwrap().interactions as f64
            })
            .collect()
    };
    let naive = sample(EngineKind::Naive, 60_000);
    let count = sample(EngineKind::Count, 70_000);
    let r = ssr::analysis::ks::ks_two_sample(&naive, &count);
    assert!(
        r.p_value > 0.001,
        "KS rejected naive vs count: D = {:.4}, p = {:.5}",
        r.statistic,
        r.p_value
    );
}

/// The tree protocol from a uniform start spends most of its run in the
/// buffer-epidemic (extra–extra) and unload/re-enter (rank–extra) phases —
/// exactly the classes the count engine's generalised batch mode now
/// splits hypergeometrically across the two populations. The
/// stabilisation-time distributions must remain KS-indistinguishable from
/// the exact jump chain.
#[test]
fn tree_count_vs_jump_ks_test_on_batched_extra_classes() {
    let n = 1000;
    let p = TreeRanking::new(n);
    let trials = 200u64;
    let sample = |kind: EngineKind, seed0: u64| -> Vec<f64> {
        (0..trials)
            .map(|t| {
                let mut rng = Xoshiro256::seed_from_u64(seed0 + t);
                let cfg = init::uniform_random(n, p.num_states(), &mut rng);
                let mut e = make_engine(kind, &p, cfg, seed0 + t).unwrap();
                e.run_until_silent(u64::MAX).unwrap().interactions as f64
            })
            .collect()
    };
    let jump = sample(EngineKind::Jump, 80_000);
    let count = sample(EngineKind::Count, 90_000);
    let r = ssr::analysis::ks::ks_two_sample(&jump, &count);
    assert!(
        r.p_value > 0.01,
        "KS rejected jump vs count on tree: D = {:.4}, p = {:.5}",
        r.statistic,
        r.p_value
    );
}

/// Same check on the line protocol (one extra state, rank-initiator-only
/// cross class) from the all-X start that funnels everything through the
/// cross rule.
#[test]
fn line_count_vs_jump_ks_test_on_batched_cross_class() {
    let n = 960;
    let p = LineOfTraps::new(n);
    let trials = 150u64;
    let sample = |kind: EngineKind, seed0: u64| -> Vec<f64> {
        (0..trials)
            .map(|t| {
                let mut e =
                    make_engine(kind, &p, vec![p.x_state(); n], seed0 + t).unwrap();
                e.run_until_silent(u64::MAX).unwrap().interactions as f64
            })
            .collect()
    };
    let jump = sample(EngineKind::Jump, 100_000);
    let count = sample(EngineKind::Count, 110_000);
    let r = ssr::analysis::ks::ks_two_sample(&jump, &count);
    assert!(
        r.p_value > 0.01,
        "KS rejected jump vs count on line: D = {:.4}, p = {:.5}",
        r.statistic,
        r.p_value
    );
}

/// With batching off, the count engine walks the jump engine's chain on
/// the tree protocol too — the multi-class exact sampler (equal-rank +
/// extra–extra + symmetric cross all live) is draw-for-draw shared.
#[test]
fn count_and_jump_are_trace_identical_on_tree() {
    let n = 300;
    let p = TreeRanking::new(n);
    for seed in [2u64, 77, 4242] {
        let mut rng = Xoshiro256::seed_from_u64(seed);
        let cfg = init::uniform_random(n, p.num_states(), &mut rng);
        let mut jump = JumpSimulation::new(&p, cfg.clone(), seed).unwrap();
        let mut count = CountSimulation::new(&p, cfg, seed)
            .unwrap()
            .with_batching(false);
        let rj = jump.run_until_silent(u64::MAX).unwrap();
        let rc = count.run_until_silent(u64::MAX).unwrap();
        assert_eq!(
            rj.productive_interactions, rc.productive_interactions,
            "seed {seed}: productive counts must be identical"
        );
        assert_eq!(rj.interactions, rc.interactions, "seed {seed}");
        assert_eq!(jump.counts(), count.counts(), "seed {seed}");
    }
}

/// The parallel batched path is not a second implementation: the split
/// work is pre-partitioned into tasks with seed-derived RNG streams and
/// merged in task order, so a full tree-protocol run must produce the
/// bit-identical `RunReport` (clocks and final configuration) whether the
/// tasks execute on one thread or four. `n` is chosen so the reset
/// epidemic's batches clear the engine's parallel threshold (8192 draws —
/// asserted below via the advance quantum), i.e. the 4-thread run really
/// does execute split tasks on worker threads.
#[test]
fn count_thread_counts_produce_identical_run_reports() {
    let n = 1 << 19;
    let p = TreeRanking::new(n);
    let run = |threads: usize| {
        let mut rng = Xoshiro256::seed_from_u64(5);
        let cfg = init::uniform_random(n, p.num_states(), &mut rng);
        let mut s = CountSimulation::new(&p, cfg, 99).unwrap().with_threads(threads);
        let mut max_quantum = 0u64;
        while let Some(applied) = s.advance_chain() {
            max_quantum = max_quantum.max(applied);
        }
        assert!(
            max_quantum >= 8192,
            "run never reached the parallel batch threshold (max quantum {max_quantum})"
        );
        (
            s.interactions(),
            s.productive_interactions(),
            s.into_counts(),
        )
    };
    let serial = run(1);
    assert_eq!(serial, run(4), "1 vs 4 threads: RunReport must be identical");
}

/// The same invariant through the `Scenario` front door: a single-trial
/// scenario hands its thread budget to the count engine, and the result
/// must not depend on it. (Batches at this size stay under the parallel
/// threshold — this covers the plumbing; the worker-thread path itself is
/// exercised by `count_thread_counts_produce_identical_run_reports`
/// above and the engine's unit tests.)
#[test]
fn scenario_single_trial_is_thread_count_invariant() {
    let n = 8192;
    let p = TreeRanking::new(n);
    let run = |threads: usize| {
        Scenario::new(&p)
            .engine(EngineKind::Count)
            .init(Init::Uniform)
            .base_seed(404)
            .threads(threads)
            .run_one(0)
            .unwrap()
            .interactions
    };
    assert_eq!(run(1), run(4));
}

/// KS test of the batched path under the task-partitioned, derived-stream
/// split scheme (shared verbatim by the serial and worker-thread branches
/// — the thread-determinism tests above prove the equivalence) against
/// the exact jump chain on the tree protocol: the stabilisation-time
/// distribution must be indistinguishable.
#[test]
fn tree_count_parallel_vs_jump_ks_test() {
    let n = 1000;
    let p = TreeRanking::new(n);
    let trials = 200u64;
    let sample = |kind: EngineKind, seed0: u64| -> Vec<f64> {
        (0..trials)
            .map(|t| {
                let mut rng = Xoshiro256::seed_from_u64(seed0 + t);
                let cfg = init::uniform_random(n, p.num_states(), &mut rng);
                let mut e: Box<dyn Engine> = match kind {
                    EngineKind::Count => Box::new(
                        CountSimulation::new(&p, cfg, seed0 + t).unwrap().with_threads(4),
                    ),
                    _ => make_engine(kind, &p, cfg, seed0 + t).unwrap(),
                };
                e.run_until_silent(u64::MAX).unwrap().interactions as f64
            })
            .collect()
    };
    let jump = sample(EngineKind::Jump, 120_000);
    let count = sample(EngineKind::Count, 130_000);
    let r = ssr::analysis::ks::ks_two_sample(&jump, &count);
    assert!(
        r.p_value > 0.01,
        "KS rejected jump vs 4-thread count on tree: D = {:.4}, p = {:.5}",
        r.statistic,
        r.p_value
    );
}

/// All engines agree on the unique silent support from a common start.
#[test]
fn all_three_engines_reach_the_same_silent_support() {
    let mut rng = Xoshiro256::seed_from_u64(5);
    for n in [10usize, 20] {
        let p = TreeRanking::new(n);
        let cfg = init::uniform_random(n, p.num_states(), &mut rng);
        let counts: Vec<Vec<u32>> = EngineKind::ALL
            .iter()
            .map(|&kind| {
                let mut e = make_engine(kind, &p, cfg.clone(), 31).unwrap();
                e.run_until_silent(u64::MAX).unwrap();
                e.counts().to_vec()
            })
            .collect();
        assert_eq!(counts[0], counts[1], "n = {n}");
        assert_eq!(counts[1], counts[2], "n = {n}");
    }
}

/// Spread start for the loose protocol: followers laid out round-robin
/// over all τ + 1 timer values, no leader — the regime where almost all
/// productive weight sits in the enumerated sparse pairs.
fn loose_spread_start(p: &LooseLeaderElection, n: usize) -> Vec<State> {
    let timers = p.timer_max() + 1;
    (0..n).map(|i| p.follower_state(i as u32 % timers)).collect()
}

/// Followers round-robin over the `width` timer values starting at `lo`,
/// no leader. A *narrow* band of occupied timers is the loose protocol's
/// natural operating regime (a leader keeps refreshing timers to τ, so
/// occupancy concentrates near the top); it keeps the occupied-pair count
/// far below the batch size, which is what lets sparse batches fire.
fn loose_band_start(p: &LooseLeaderElection, n: usize, lo: u32, width: u32) -> Vec<State> {
    (0..n)
        .map(|i| p.follower_state(lo + i as u32 % width))
        .collect()
}

/// With batching off, the count engine walks the jump engine's chain on
/// the loose protocol too: the exact sampler is draw-for-draw shared even
/// when nearly all the productive weight lives in the sparse-pair class
/// (loose protocols are never silent, so this compares fixed-length
/// prefixes instead of full runs).
#[test]
fn count_and_jump_are_trace_identical_on_loose() {
    let n = 512;
    let p = LooseLeaderElection::new(n);
    for seed in [3u64, 5151] {
        let cfg = loose_spread_start(&p, n);
        let mut jump = JumpSimulation::new(&p, cfg.clone(), seed).unwrap();
        let mut count = CountSimulation::new(&p, cfg, seed)
            .unwrap()
            .with_batching(false);
        for _ in 0..20_000 {
            jump.step_productive();
            count.advance_chain();
        }
        assert_eq!(jump.interactions(), count.interactions(), "seed {seed}");
        assert_eq!(jump.counts(), count.counts(), "seed {seed}");
    }
}

/// KS test of the batched count engine against the exact jump chain on
/// the loose protocol, at an `n` where the pre-hierarchy engine fell back
/// to exact stepping (the flat `2·partner-sum` rein allowed only
/// ~7n/256 ≈ 56 < MIN_BATCH draws, and the declared-pair threshold asked
/// for ~τ² ≈ 9k) but the per-pair caps and occupied-pair threshold now
/// batch. Statistic: the interaction clock when the first leader rises
/// from a leaderless band start — the whole drain-to-timeout phase runs
/// on sparse-pair weight between the occupied timer cohorts.
#[test]
fn loose_count_vs_jump_ks_test_on_sparse_batches() {
    use ssr::analysis::ks::ks_two_sample;
    let n = 2048;
    let p = LooseLeaderElection::new(n);
    let trials = 80u64;
    let budget = (n as u64) * (n as u64);
    let jump_sample: Vec<f64> = (0..trials)
        .map(|t| {
            let mut s =
                JumpSimulation::new(&p, loose_band_start(&p, n, 1, 8), 140_000 + t).unwrap();
            while p.leader_count(s.counts()) == 0 {
                s.step_productive();
                assert!(s.interactions() < budget, "no leader within budget");
            }
            s.interactions() as f64
        })
        .collect();
    let count_sample: Vec<f64> = (0..trials)
        .map(|t| {
            let mut s =
                CountSimulation::new(&p, loose_band_start(&p, n, 1, 8), 150_000 + t).unwrap();
            let mut max_quantum = 0u64;
            while p.leader_count(s.counts()) == 0 {
                max_quantum = max_quantum.max(s.advance_chain().unwrap());
                assert!(s.interactions() < budget, "no leader within budget");
            }
            assert!(
                max_quantum > 1,
                "count engine never batched the sparse pre-leader phase"
            );
            s.interactions() as f64
        })
        .collect();
    let r = ks_two_sample(&jump_sample, &count_sample);
    assert!(
        r.p_value > 0.01,
        "KS rejected jump vs count on loose: D = {:.4}, p = {:.5}",
        r.statistic,
        r.p_value
    );
}

/// 1-vs-4-thread bit-identity on the loose protocol at n = 65536: the
/// per-group sparse split tasks must merge into the identical trajectory
/// whether they run on the coordinator or fan out across the pool.
#[test]
fn loose_thread_counts_produce_identical_trajectories() {
    let n = 1 << 16;
    let p = LooseLeaderElection::new(n);
    let tau = p.timer_max();
    let run = |threads: usize| {
        let mut s = CountSimulation::new(&p, loose_band_start(&p, n, tau - 7, 8), 77)
            .unwrap()
            .with_threads(threads);
        let mut max_quantum = 0u64;
        for _ in 0..40 {
            max_quantum = max_quantum.max(s.advance_chain().unwrap());
        }
        assert!(
            max_quantum >= 4096,
            "run never reached the parallel batch threshold (max quantum {max_quantum})"
        );
        (
            s.interactions(),
            s.productive_interactions(),
            s.into_counts(),
        )
    };
    let serial = run(1);
    assert_eq!(serial, run(4), "1 vs 4 threads on loose sparse batches");
}

#[test]
fn jump_simulator_skips_but_never_undercounts() {
    // The jump interaction count must stochastically dominate the number
    // of productive interactions and agree with the naive simulator's
    // ballpark (checked above); here: productive counts are *identical in
    // distribution support* — each protocol needs at least n-1 productive
    // steps to rank a stacked start.
    let n = 20;
    for seed in 0..20 {
        let p = GenericRanking::new(n);
        let mut s = JumpSimulation::new(&p, vec![0; n], seed).unwrap();
        let rep = s.run_until_silent(u64::MAX).unwrap();
        assert!(rep.productive_interactions >= (n - 1) as u64);
        assert!(rep.interactions >= rep.productive_interactions);
    }
}
