//! Property-based tests (proptest) over the whole stack: configuration
//! generators, layout bijections, conservation laws, and the Lemma 5/10
//! machinery under arbitrary inputs.

// Audited: tests cast tiny bounded f64/u64 values (n <= 10^4) to usize/u32.
#![allow(clippy::cast_possible_truncation)]

use proptest::prelude::*;
use ssr::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// `k_distant` produces configurations at exactly distance `k`.
    #[test]
    fn k_distant_generator_is_exact(n in 2usize..200, seed in any::<u64>(), kf in 0.0f64..1.0) {
        let k = ((n - 1) as f64 * kf) as usize;
        let mut rng = Xoshiro256::seed_from_u64(seed);
        for placement in [
            init::DuplicatePlacement::Random,
            init::DuplicatePlacement::Stacked,
            init::DuplicatePlacement::SpreadLow,
        ] {
            let cfg = init::k_distant(n, k, placement, &mut rng);
            prop_assert_eq!(cfg.len(), n);
            prop_assert_eq!(init::distance(&cfg, n), k);
        }
    }

    /// Ring layout: every state id belongs to exactly one (trap, offset),
    /// and the transition function conserves agents and stays in range.
    #[test]
    fn ring_layout_and_rules_are_total(n in 2usize..300) {
        let p = RingOfTraps::new(n);
        let chain = p.chain();
        prop_assert_eq!(chain.num_states(), n);
        for s in 0..n as State {
            let (t, b) = chain.locate(s);
            prop_assert_eq!(chain.state(t, b), s);
            if let Some((a, b2)) = p.transition(s, s) {
                prop_assert!((a as usize) < n);
                prop_assert!((b2 as usize) < n);
            }
        }
    }

    /// Line layout: states partition into lines; transitions stay in range.
    #[test]
    fn line_layout_and_rules_are_total(n in 3usize..400) {
        let p = LineOfTraps::new(n);
        let mut seen = vec![false; n];
        for l in 0..p.num_lines() {
            let chain = p.line(l);
            for id in chain.base_id()..chain.end_id() {
                prop_assert!(!seen[id as usize], "state {} in two lines", id);
                seen[id as usize] = true;
                prop_assert_eq!(p.line_of(id), l);
            }
        }
        prop_assert!(seen.iter().all(|&b| b));
        let x = p.x_state();
        for s in 0..n as State {
            for pair in [(s, s), (s, x)] {
                if let Some((a, b)) = p.transition(pair.0, pair.1) {
                    prop_assert!((a as usize) <= n);
                    prop_assert!((b as usize) <= n);
                }
            }
        }
    }

    /// Lemma 10 identity on arbitrary configurations (rank + X mixed).
    #[test]
    fn lemma10_identity(n in 6usize..250, seed in any::<u64>()) {
        let p = LineOfTraps::new(n);
        let mut rng = Xoshiro256::seed_from_u64(seed);
        let cfg = init::uniform_random(n, n + 1, &mut rng);
        let counts = init::counts(&cfg, n + 1);
        prop_assert_eq!(p.surplus(&counts), p.deficit(&counts));
        prop_assert!(p.surplus(&counts) <= p.tokens(&counts));
    }

    /// Tree of ranks: pre-order ids form a bijection and R1's arithmetic
    /// lands on real children; dispersal flow conserves agents.
    #[test]
    fn tree_flow_conserves_agents(n in 1usize..300, seed in any::<u64>()) {
        let p = TreeRanking::new(n);
        let mut rng = Xoshiro256::seed_from_u64(seed);
        let cfg = init::uniform_random(n, Protocol::num_states(&p), &mut rng);
        let counts = init::counts(&cfg, Protocol::num_states(&p));
        let settled = p.dispersal_flow(&counts);
        prop_assert_eq!(settled.iter().sum::<u64>(), n as u64);
    }

    /// Agent conservation along real trajectories for every protocol.
    #[test]
    fn simulation_conserves_agents(n in 4usize..40, seed in any::<u64>()) {
        let mut rng = Xoshiro256::seed_from_u64(seed);
        let p = TreeRanking::new(n);
        let cfg = init::uniform_random(n, Protocol::num_states(&p), &mut rng);
        let mut sim = Simulation::new(&p, cfg, seed).unwrap();
        for _ in 0..2_000 {
            sim.step();
        }
        let total: u32 = sim.counts().iter().sum();
        prop_assert_eq!(total as usize, n);
    }

    /// The jump simulator's interaction clock dominates its productive
    /// count and both simulators agree silence = perfect ranking.
    #[test]
    fn jump_clock_dominates(n in 4usize..40, seed in any::<u64>()) {
        let p = GenericRanking::new(n);
        let mut sim = JumpSimulation::new(&p, vec![0; n], seed).unwrap();
        let rep = sim.run_until_silent(u64::MAX).unwrap();
        prop_assert!(rep.interactions >= rep.productive_interactions);
        prop_assert!(sim.counts().iter().all(|&c| c == 1));
    }

    /// Balanced trees: kinds by parity, heights bounded, preorder bijective.
    #[test]
    fn balanced_tree_invariants(n in 1usize..2000) {
        let t = BalancedTree::new(n);
        prop_assert!(t.validate().is_ok());
        if n >= 2 {
            prop_assert!((t.height() as f64) <= 2.0 * (n as f64).log2() + 1e-9);
        }
    }

    /// Routing graphs: connected for all sizes, simple cubic for even ≥ 8.
    #[test]
    fn routing_graph_invariants(v in 1usize..600) {
        let g = CubicGraph::routing_graph(v);
        prop_assert!(g.is_connected());
        if v >= 8 && v % 2 == 0 {
            prop_assert!(g.is_three_regular());
        }
    }
}
