//! Integration tests for the extension layers: exhaustive model checking,
//! fault-recovery reporting, non-uniform schedulers, loose stabilisation,
//! and the distributional analysis toolkit — exercised together through
//! the umbrella `ssr` crate, the way a downstream user would.

// Audited: tests cast tiny bounded f64/u64 values (n <= 10^4) to usize/u32.
#![allow(clippy::cast_possible_truncation)]

use ssr::analysis::bootstrap::{median_ci, BootstrapOptions};
use ssr::analysis::modelcheck::ModelCheckError;
use ssr::engine::faults::{rank_distance, recovery_after_faults};
use ssr::engine::observer::NullObserver;
use ssr::prelude::*;

// ---------------------------------------------------------------------
// Model checking across the whole protocol family.
// ---------------------------------------------------------------------

#[test]
fn every_protocol_family_member_is_certified_stable() {
    let limit = 3_000_000;
    let gen = GenericRanking::new(6);
    let ring = RingOfTraps::new(6);
    let line = LineOfTraps::new(6);
    let tree = TreeRanking::with_buffer(5, 2);

    for (name, cert) in [
        ("generic", verify_stability(&gen, limit).unwrap()),
        ("ring", verify_stability(&ring, limit).unwrap()),
        ("line", verify_stability(&line, limit).unwrap()),
        ("tree", verify_stability(&tree, limit).unwrap()),
    ] {
        assert_eq!(
            cert.silent_configurations, 1,
            "{name}: the perfect ranking must be the unique silent config"
        );
        assert!(cert.configurations > 1, "{name}");
    }
}

#[test]
fn model_checker_counts_the_full_multiset_space() {
    // C(n + S - 1, n) for A_G with n = S = 6: C(11, 6) = 462.
    let cert = verify_stability(&GenericRanking::new(6), 10_000).unwrap();
    assert_eq!(cert.configurations, 462);
}

#[test]
fn loose_protocol_fails_silence_checks_as_documented() {
    // The loose protocol is *not* a ranking protocol: the model checker
    // must reject it (its "perfect ranking" — all states distinct — is
    // not silent because timers keep churning).
    let p = LooseLeaderElection::with_timer(4, 2);
    let err = verify_stability(&p, 100_000).unwrap_err();
    assert!(matches!(
        err,
        ModelCheckError::PerfectRankingNotSilent | ModelCheckError::SilentNotRanked { .. }
    ));
}

// ---------------------------------------------------------------------
// Fault recovery across protocols.
// ---------------------------------------------------------------------

#[test]
fn all_protocols_recover_from_fault_bursts() {
    let n = 36;
    let gen = GenericRanking::new(n);
    let ring = RingOfTraps::new(n);
    let tree = TreeRanking::new(n);
    for f in [1usize, 5, 18] {
        for (name, rep) in [
            ("generic", recovery_after_faults(&gen, f, 7, u64::MAX).unwrap()),
            ("ring", recovery_after_faults(&ring, f, 7, u64::MAX).unwrap()),
            ("tree", recovery_after_faults(&tree, f, 7, u64::MAX).unwrap()),
        ] {
            assert!(rep.faults_applied <= f, "{name}");
            assert!(rep.distance_after_faults <= rep.faults_applied, "{name}");
        }
    }
}

#[test]
fn fault_distance_matches_paper_k_distance_definition() {
    // Build an explicitly k-distant configuration and cross-check the
    // faults module's distance against init::distance.
    let n = 24;
    let mut rng = Xoshiro256::seed_from_u64(3);
    for k in [0usize, 1, 5, 12] {
        let cfg = init::k_distant(n, k, ssr::engine::init::DuplicatePlacement::Random, &mut rng);
        let counts = init::counts(&cfg, n);
        assert_eq!(rank_distance(&counts, n), k);
        assert_eq!(init::distance(&cfg, n), k);
    }
}

// ---------------------------------------------------------------------
// Scheduler robustness: correctness is scheduler-independent.
// ---------------------------------------------------------------------

fn stabilises_under<S: Scheduler>(p: &dyn Protocol, mut sched: S, seed: u64) {
    let n = p.population_size();
    let mut rng = Xoshiro256::seed_from_u64(seed);
    let start = init::uniform_random(n, p.num_states(), &mut rng);
    let mut sim = Simulation::new(p, start, seed).unwrap();
    sim.run_until_silent_scheduled(u64::MAX, &mut sched)
        .unwrap_or_else(|e| panic!("{} under {}: {e}", p.name(), sched.describe()));
    assert!(init::is_perfect_ranking(sim.agents(), n));
}

#[test]
fn generic_stabilises_under_skewed_schedulers() {
    let p = GenericRanking::new(24);
    stabilises_under(&p, ZipfScheduler::new(24, 1.0), 11);
    stabilises_under(&p, ClusteredScheduler::new(24, 12, 0.05), 12);
}

#[test]
fn ring_stabilises_under_skewed_schedulers() {
    let p = RingOfTraps::new(24);
    stabilises_under(&p, ZipfScheduler::new(24, 0.8), 13);
    stabilises_under(&p, ClusteredScheduler::new(24, 8, 0.1), 14);
}

#[test]
fn tree_stabilises_under_skewed_schedulers() {
    let p = TreeRanking::new(48);
    stabilises_under(&p, ZipfScheduler::new(48, 1.0), 15);
    stabilises_under(&p, ClusteredScheduler::new(48, 24, 0.05), 16);
}

#[test]
fn uniform_scheduler_trait_matches_builtin_loop() {
    // Same protocol, same seed grid: the trait-driven uniform scheduler
    // must produce the same stabilisation-time *distribution* as the
    // builtin loop (they consume randomness differently, so compare
    // means, not trajectories).
    let p = GenericRanking::new(12);
    let trials = 200u64;
    let mean_builtin: f64 = (0..trials)
        .map(|s| {
            let mut sim = Simulation::new(&p, vec![0; 12], 500 + s).unwrap();
            sim.run_until_silent(u64::MAX).unwrap().interactions as f64
        })
        .sum::<f64>()
        / trials as f64;
    let mean_trait: f64 = (0..trials)
        .map(|s| {
            let mut sim = Simulation::new(&p, vec![0; 12], 9_500 + s).unwrap();
            let mut sched = UniformScheduler::new(12);
            sim.run_until_silent_scheduled(u64::MAX, &mut sched)
                .unwrap()
                .interactions as f64
        })
        .sum::<f64>()
        / trials as f64;
    let rel = (mean_builtin - mean_trait).abs() / mean_builtin;
    assert!(rel < 0.15, "builtin {mean_builtin:.0} vs trait {mean_trait:.0}");
}

// ---------------------------------------------------------------------
// Loose stabilisation composed with the other extensions.
// ---------------------------------------------------------------------

#[test]
fn loose_election_converges_under_clustered_scheduler() {
    let n = 40;
    let p = LooseLeaderElection::new(n);
    let mut sched = ClusteredScheduler::new(n, n / 2, 0.1);
    let mut sim = Simulation::new(&p, vec![p.leader_state(); n], 21).unwrap();
    let cap = 5_000_000u64;
    while p.leader_count(sim.counts()) != 1 {
        assert!(sim.interactions() < cap, "no convergence under clustering");
        for _ in 0..64 {
            sim.step_scheduled(&mut sched);
        }
    }
}

#[test]
fn loose_election_survives_fault_bursts() {
    let n = 40;
    let p = LooseLeaderElection::new(n);
    let mut rng = Xoshiro256::seed_from_u64(5);
    let mut sim = Simulation::new(&p, vec![p.timer_max(); n], 23).unwrap();
    for _ in 0..3 {
        sim.run_for(2_000 * n as u64, &mut NullObserver);
        for _ in 0..n / 4 {
            let victim = rng.below_usize(n);
            let garbage = rng.below(p.num_states() as u64) as State;
            sim.inject_fault(victim, garbage);
        }
    }
    // After the last burst the protocol must re-converge to one leader.
    let cap = sim.interactions() + 50_000_000;
    while p.leader_count(sim.counts()) != 1 {
        assert!(sim.interactions() < cap, "no re-convergence after faults");
        sim.run_for(64, &mut NullObserver);
    }
}

// ---------------------------------------------------------------------
// Distributional toolkit on real trial data.
// ---------------------------------------------------------------------

#[test]
fn ecdf_and_bootstrap_summarise_real_stabilisation_times() {
    let p = TreeRanking::new(32);
    let times: Vec<f64> = (0..60u64)
        .map(|s| {
            let mut sim = JumpSimulation::new(&p, vec![0; 32], 700 + s).unwrap();
            sim.run_until_silent(u64::MAX).unwrap().parallel_time
        })
        .collect();

    let ecdf = Ecdf::new(times.clone());
    // The median must sit where half the mass is.
    let med = ecdf.quantile(0.5);
    assert!((ecdf.eval(med) - 0.5).abs() <= 0.5 / 60.0 + 1e-12);
    // whp reading: the p99 exceedance is at most 1 - 0.99.
    assert!(ecdf.exceedance(ecdf.quantile(0.99)) <= 0.011);

    let ci = median_ci(&times, &BootstrapOptions::default());
    assert!(ci.contains(med), "bootstrap CI must cover the sample median");
    assert!(ci.half_width() < med, "CI should be informative at 60 trials");
}

#[test]
fn jump_and_naive_recovery_times_agree_distributionally() {
    // Fault recovery through the jump simulator must match a naive-sim
    // recovery from the same k-distant landscape in distribution (KS).
    let n = 24;
    let p = GenericRanking::new(n);
    let trials = 120u64;
    let jump: Vec<f64> = (0..trials)
        .map(|s| {
            recovery_after_faults(&p, 6, 40_000 + s, u64::MAX)
                .unwrap()
                .recovered
                .parallel_time
        })
        .collect();
    let naive: Vec<f64> = (0..trials)
        .map(|s| {
            // Reproduce the same corruption procedure, then run naively.
            let mut counts = vec![1u32; n];
            let mut rng = Xoshiro256::seed_from_u64((40_000 + s) ^ 0x5eed_f417);
            ssr::engine::perturb_counts(&mut counts, n, 6, &mut rng);
            let cfg = init::from_counts(&counts);
            let mut sim = Simulation::new(&p, cfg, 90_000 + s).unwrap();
            sim.run_until_silent(u64::MAX).unwrap().parallel_time
        })
        .collect();
    let ks = ssr::analysis::ks_two_sample(&jump, &naive);
    assert!(
        ks.p_value > 0.01,
        "jump vs naive recovery distributions differ: D = {:.3}, p = {:.4}",
        ks.statistic,
        ks.p_value
    );
}
