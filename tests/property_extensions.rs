//! Property-based tests for the extension layers: fault injection,
//! schedulers, the loose protocol's transition table, and the ECDF /
//! bootstrap analysis tools — invariants under arbitrary inputs.

// Audited: tests cast tiny bounded f64/u64 values (n <= 10^4) to usize/u32.
#![allow(clippy::cast_possible_truncation)]

use proptest::prelude::*;
use ssr::analysis::bootstrap::{bootstrap_ci, BootstrapOptions};
use ssr::analysis::ecdf::{Ecdf, Histogram};
use ssr::engine::faults::{perturb_counts, rank_distance};
use ssr::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Fault injection conserves the number of agents and never exceeds
    /// the requested damage, for arbitrary occupancy landscapes.
    #[test]
    fn perturbation_conserves_population(
        counts in prop::collection::vec(0u32..5, 2..40),
        faults in 0usize..30,
        seed in any::<u64>(),
    ) {
        let mut counts = counts;
        counts[0] += 1; // ensure non-empty population
        let total: u32 = counts.iter().sum();
        let s = counts.len();
        let mut rng = Xoshiro256::seed_from_u64(seed);
        let changed = perturb_counts(&mut counts, s, faults, &mut rng);
        prop_assert!(changed <= faults);
        prop_assert_eq!(counts.iter().sum::<u32>(), total);
    }

    /// From a perfect ranking, `f` faults leave at most `f` rank states
    /// empty, and `rank_distance` reports exactly the empty ones.
    #[test]
    fn fault_distance_bounded_by_faults(
        n in 2usize..60,
        faults in 0usize..20,
        seed in any::<u64>(),
    ) {
        let mut counts = vec![1u32; n];
        let mut rng = Xoshiro256::seed_from_u64(seed);
        perturb_counts(&mut counts, n, faults, &mut rng);
        let k = rank_distance(&counts, n);
        prop_assert!(k <= faults.min(n));
        let empties = counts.iter().filter(|&&c| c == 0).count();
        prop_assert_eq!(k, empties);
    }

    /// Every scheduler yields ordered pairs of distinct in-range agents
    /// for arbitrary parameters.
    #[test]
    fn schedulers_yield_valid_pairs(
        n in 4usize..120,
        theta in 0.0f64..2.5,
        eps_pct in 1u32..100,
        seed in any::<u64>(),
    ) {
        let mut rng = Xoshiro256::seed_from_u64(seed);
        let split = n / 2;
        let eps = f64::from(eps_pct) / 100.0;
        let mut uniform = UniformScheduler::new(n);
        let mut zipf = ZipfScheduler::new(n, theta);
        let mut clustered = ClusteredScheduler::new(n, split, eps);
        for _ in 0..200 {
            for (i, r) in [
                uniform.next_pair(&mut rng),
                zipf.next_pair(&mut rng),
                clustered.next_pair(&mut rng),
            ] {
                prop_assert!(i < n && r < n);
                prop_assert_ne!(i, r);
            }
        }
    }

    /// The loose protocol's transition table never returns identity
    /// rewrites and never leaves the state space, for any timer ceiling.
    #[test]
    fn loose_transitions_are_well_formed(n in 2usize..50, tau in 1u32..40) {
        let p = LooseLeaderElection::with_timer(n, tau);
        let s_total = p.num_states() as State;
        for a in 0..s_total {
            for b in 0..s_total {
                if let Some((a2, b2)) = p.transition(a, b) {
                    prop_assert!(a2 < s_total && b2 < s_total);
                    prop_assert!(a2 != a || b2 != b, "identity at ({}, {})", a, b);
                }
            }
        }
    }

    /// ECDF axioms: monotone, 0 below the minimum, 1 at the maximum,
    /// exceedance is the exact complement.
    #[test]
    fn ecdf_axioms(sample in prop::collection::vec(-1e6f64..1e6, 1..60)) {
        let e = Ecdf::new(sample.clone());
        let lo = e.values()[0];
        let hi = *e.values().last().unwrap();
        prop_assert_eq!(e.eval(lo - 1.0), 0.0);
        prop_assert_eq!(e.eval(hi), 1.0);
        let mut prev = 0.0;
        for &x in e.values() {
            let f = e.eval(x);
            prop_assert!(f >= prev);
            prop_assert!((f + e.exceedance(x) - 1.0).abs() < 1e-12);
            prev = f;
        }
    }

    /// The empirical quantile is a sample value and consistent with the
    /// CDF: `F(quantile(q)) ≥ q`.
    #[test]
    fn ecdf_quantile_consistency(
        sample in prop::collection::vec(-1e3f64..1e3, 1..50),
        q in 0.0f64..1.0,
    ) {
        let e = Ecdf::new(sample.clone());
        let v = e.quantile(q);
        prop_assert!(sample.contains(&v));
        prop_assert!(e.eval(v) >= q - 1e-12);
    }

    /// Histogram bins partition the sample: counts sum to the sample size
    /// and every value falls inside its bin's range.
    #[test]
    fn histogram_partitions_sample(
        sample in prop::collection::vec(-500.0f64..500.0, 1..80),
        bins in 1usize..12,
    ) {
        let h = Histogram::of(&sample, bins);
        prop_assert_eq!(h.counts().iter().sum::<u64>(), sample.len() as u64);
        let (first_lo, _) = h.bin_range(0);
        let (_, last_hi) = h.bin_range(bins - 1);
        for &x in &sample {
            prop_assert!(x >= first_lo - 1e-9 && x <= last_hi + 1e-9);
        }
    }

    /// Bootstrap percentile intervals bracket both the point estimate and
    /// (for the mean statistic) stay inside the sample range.
    #[test]
    fn bootstrap_interval_brackets_point(
        sample in prop::collection::vec(-100.0f64..100.0, 2..40),
        seed in any::<u64>(),
    ) {
        let opts = BootstrapOptions { resamples: 200, seed, ..Default::default() };
        let ci = bootstrap_ci(&sample, |xs| xs.iter().sum::<f64>() / xs.len() as f64, &opts);
        prop_assert!(ci.lower <= ci.point + 1e-9);
        prop_assert!(ci.point <= ci.upper + 1e-9);
        let lo = sample.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = sample.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(ci.lower >= lo - 1e-9 && ci.upper <= hi + 1e-9);
    }
}

proptest! {
    // Simulation-backed properties get fewer cases to stay fast.
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Whatever faults are injected into a silent generic population, the
    /// jump simulator returns it to the unique silent configuration.
    #[test]
    fn recovery_always_restores_perfect_ranking(
        n in 4usize..40,
        faults in 1usize..12,
        seed in any::<u64>(),
    ) {
        let p = GenericRanking::new(n);
        let rep = ssr::engine::recovery_after_faults(&p, faults, seed, u64::MAX).unwrap();
        prop_assert!(rep.distance_after_faults <= rep.faults_applied);
    }

    /// The generic protocol stabilises under arbitrary Zipf skew (time
    /// may inflate, correctness may not).
    #[test]
    fn generic_stabilises_under_any_zipf_skew(
        theta in 0.0f64..1.5,
        seed in any::<u64>(),
    ) {
        let n = 16;
        let p = GenericRanking::new(n);
        let mut sched = ZipfScheduler::new(n, theta);
        let mut sim = Simulation::new(&p, vec![0; n], seed).unwrap();
        sim.run_until_silent_scheduled(u64::MAX, &mut sched).unwrap();
        prop_assert!(init::is_perfect_ranking(sim.agents(), n));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Under an arbitrary mixed fault plan, Byzantine agents never
    /// update: pinned into state 0 by a stacked start, their mass stays
    /// in state 0 for any seed and horizon — background corruption and
    /// churn select victims from the non-Byzantine complement only —
    /// and churn replaces agents rather than removing them, so the
    /// population total is conserved exactly.
    #[test]
    fn byzantine_mass_is_invariant_and_churn_conserves_population(
        n in 8usize..40,
        byz in 1u32..5,
        horizon_pt in 10u64..120,
        seed in any::<u64>(),
    ) {
        let p = GenericRanking::new(n);
        let plan = FaultPlan::new()
            .byzantine(byz)
            .churn(0.002)
            .rate(0.002);
        let mut e = make_engine(EngineKind::Jump, &p, vec![0; n], seed).unwrap();
        let out = run_with_plan(e.as_mut(), &plan, seed ^ 0xAD17, horizon_pt * n as u64);
        prop_assert!(e.counts()[0] >= byz);
        prop_assert_eq!(e.counts().iter().map(|&c| u64::from(c)).sum::<u64>(), n as u64);
        prop_assert!((0.0..=1.0).contains(&out.availability));
        prop_assert!(out.mean_k <= out.max_k as f64);
    }
}
