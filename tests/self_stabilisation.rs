//! End-to-end self-stabilisation: every protocol, from every family of
//! adversarial starting configurations, reaches a silent perfect ranking —
//! and silent configurations are truly stable.

// Audited: tests cast tiny bounded f64/u64 values (n <= 10^4) to usize/u32.
#![allow(clippy::cast_possible_truncation)]

use ssr::prelude::*;

/// All four protocols boxed behind the simulable trait.
fn protocols(n: usize) -> Vec<Box<dyn DynProtocol + Sync>> {
    vec![
        Box::new(GenericRanking::new(n)),
        Box::new(RingOfTraps::new(n)),
        Box::new(LineOfTraps::new(n)),
        Box::new(TreeRanking::new(n)),
    ]
}

/// Object-safe union of the two traits we need.
trait DynProtocol: InteractionSchema {}
impl<T: InteractionSchema> DynProtocol for T {}

fn starts(p: &(impl Protocol + ?Sized), rng: &mut Xoshiro256) -> Vec<(String, Vec<State>)> {
    let n = p.population_size();
    let mut out = vec![
        ("perfect".to_string(), init::perfect_ranking(n)),
        ("all-in-rank-0".to_string(), init::all_in(n, 0)),
        (
            "all-in-last-rank".to_string(),
            init::all_in(n, (n - 1) as State),
        ),
        (
            "uniform-random".to_string(),
            init::uniform_random(n, p.num_states(), rng),
        ),
        (
            "k-distant stacked".to_string(),
            init::k_distant(n, n / 2, init::DuplicatePlacement::Stacked, rng),
        ),
        (
            "1-distant".to_string(),
            init::k_distant(n, 1, init::DuplicatePlacement::Random, rng),
        ),
    ];
    if p.num_extra_states() > 0 {
        out.push((
            "all-in-extra".to_string(),
            init::all_in(n, p.num_rank_states() as State),
        ));
        out.push((
            "all-in-last-extra".to_string(),
            init::all_in(n, (p.num_states() - 1) as State),
        ));
    }
    out
}

#[test]
fn every_protocol_ranks_from_every_start() {
    let mut rng = Xoshiro256::seed_from_u64(1);
    for n in [12usize, 40, 90] {
        for p in protocols(n) {
            for (name, cfg) in starts(p.as_ref(), &mut rng) {
                let mut sim = JumpSimulation::new(p.as_ref(), cfg, 5).unwrap();
                sim.run_until_silent(u64::MAX)
                    .unwrap_or_else(|e| panic!("{} n={n} start={name}: {e}", p.name()));
                assert!(
                    sim.counts()[..n].iter().all(|&c| c == 1),
                    "{} n={n} start={name}: not a perfect ranking",
                    p.name()
                );
                assert!(
                    sim.counts()[n..].iter().all(|&c| c == 0),
                    "{} n={n} start={name}: extra states still occupied",
                    p.name()
                );
            }
        }
    }
}

#[test]
fn silence_is_verified_exhaustively_and_stable() {
    let mut rng = Xoshiro256::seed_from_u64(2);
    let n = 30;
    for p in protocols(n) {
        let cfg = init::uniform_random(n, p.num_states(), &mut rng);
        let mut sim = Simulation::new(p.as_ref(), cfg, 9).unwrap();
        sim.run_until_silent(200_000_000)
            .unwrap_or_else(|e| panic!("{}: {e}", p.name()));
        assert!(sim.verify_silent(), "{}: silence flag disagrees", p.name());
        let frozen = sim.agents().to_vec();
        sim.run_for(200_000, &mut ssr::engine::observer::NullObserver);
        assert_eq!(frozen, sim.agents(), "{}: silent config mutated", p.name());
    }
}

#[test]
fn stabilisation_times_are_reported_consistently() {
    let n = 24;
    for p in protocols(n) {
        let mut sim = JumpSimulation::new(p.as_ref(), vec![0; n], 3).unwrap();
        let rep = sim.run_until_silent(u64::MAX).unwrap();
        assert!(rep.interactions >= rep.productive_interactions);
        assert!((rep.parallel_time - rep.interactions as f64 / n as f64).abs() < 1e-9);
        assert_eq!(sim.interactions(), rep.interactions);
    }
}

#[test]
fn tiny_populations_work() {
    // The smallest populations each construction supports.
    let p = GenericRanking::new(2);
    let mut sim = JumpSimulation::new(&p, vec![0, 0], 1).unwrap();
    sim.run_until_silent(u64::MAX).unwrap();

    let p = RingOfTraps::new(2);
    let mut sim = JumpSimulation::new(&p, vec![1, 1], 1).unwrap();
    sim.run_until_silent(u64::MAX).unwrap();

    let p = LineOfTraps::new(3);
    let mut sim = JumpSimulation::new(&p, vec![p.x_state(); 3], 1).unwrap();
    sim.run_until_silent(u64::MAX).unwrap();

    let p = TreeRanking::new(2);
    let mut sim = JumpSimulation::new(&p, vec![p.x(1), p.x(1)], 1).unwrap();
    sim.run_until_silent(u64::MAX).unwrap();
}

#[test]
fn ranking_contract_validated_for_all_protocols() {
    use ssr::engine::protocol::validate_ranking_contract;
    for n in [3usize, 10, 25, 72] {
        validate_ranking_contract(&GenericRanking::new(n)).unwrap();
        validate_ranking_contract(&RingOfTraps::new(n)).unwrap();
        validate_ranking_contract(&LineOfTraps::new(n)).unwrap();
        validate_ranking_contract(&TreeRanking::new(n)).unwrap();
    }
}
