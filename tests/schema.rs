//! Exhaustive interaction-schema validation across every protocol in the
//! workspace: the declared classes must agree with the transition function
//! pair-for-pair (`validate_interaction_schema`), ranking protocols must
//! additionally satisfy the full ranking contract, and the schema must be
//! consistent across protocol sizes including the degenerate ones.

// Audited: tests cast tiny bounded f64/u64 values (n <= 10^4) to usize/u32.
#![allow(clippy::cast_possible_truncation)]

use ssr::prelude::*;
use ssr::protocols::loose::LooseLeaderElection;
use ssr_engine::protocol::validate_ranking_contract;

#[test]
fn generic_schema_exact_for_all_small_n() {
    for n in 1..=40 {
        validate_ranking_contract(&GenericRanking::new(n))
            .unwrap_or_else(|e| panic!("n={n}: {e}"));
    }
}

#[test]
fn ring_schema_exact_for_all_small_n() {
    for n in 1..=40 {
        validate_ranking_contract(&RingOfTraps::new(n))
            .unwrap_or_else(|e| panic!("n={n}: {e}"));
    }
}

#[test]
fn line_schema_exact_for_all_small_n() {
    for n in LineOfTraps::MIN_POPULATION..=40 {
        validate_ranking_contract(&LineOfTraps::new(n))
            .unwrap_or_else(|e| panic!("n={n}: {e}"));
    }
}

#[test]
fn tree_schema_exact_for_all_small_n() {
    for n in 1..=40 {
        validate_ranking_contract(&TreeRanking::new(n))
            .unwrap_or_else(|e| panic!("n={n}: {e}"));
        validate_ranking_contract(&TreeRanking::new(n).as_modified())
            .unwrap_or_else(|e| panic!("modified n={n}: {e}"));
    }
    for (n, k) in [(9usize, 1usize), (16, 2), (33, 5)] {
        validate_ranking_contract(&TreeRanking::with_buffer(n, k))
            .unwrap_or_else(|e| panic!("n={n} k={k}: {e}"));
    }
}

#[test]
fn loose_schema_exact_across_timer_ceilings() {
    // Not a ranking protocol: only schema ↔ transition agreement applies.
    for (n, tau) in [(4usize, 1u32), (8, 3), (16, 8), (30, 13), (64, 24)] {
        validate_interaction_schema(&LooseLeaderElection::with_timer(n, tau))
            .unwrap_or_else(|e| panic!("n={n} tau={tau}: {e}"));
    }
}

#[test]
fn loose_schema_enumerates_only_off_diagonal_pairs() {
    let p = LooseLeaderElection::with_timer(10, 6);
    let classes = p.interaction_classes();
    assert!(matches!(classes[0].class, InteractionClass::EqualRank));
    for spec in &classes[1..] {
        match spec.class {
            InteractionClass::Pair {
                initiator,
                responder,
            } => {
                assert_ne!(initiator, responder, "diagonal belongs to EqualRank");
                assert!(p.transition(initiator, responder).is_some());
            }
            other => panic!("unexpected class {other:?}"),
        }
    }
    // τ = 6: the only null off-diagonal pairs are (L, F(τ)) and (F(τ), L).
    let states = Protocol::num_states(&p);
    let all_off_diagonal = states * (states - 1);
    assert_eq!(classes.len() - 1, all_off_diagonal - 2);
}

/// Every declared class must be *used*: for each protocol, each class
/// shape covers at least one productive pair at a representative size
/// (guards against vestigial declarations surviving refactors).
#[test]
fn declared_classes_are_inhabited() {
    fn inhabited<P: InteractionSchema>(p: &P, what: &str) {
        let total = Protocol::num_states(p) as u32;
        for spec in p.interaction_classes() {
            let hit = (0..total).any(|a| {
                (0..total).any(|b| {
                    let ra = p.is_rank_state(a);
                    let rb = p.is_rank_state(b);
                    let covered = match spec.class {
                        InteractionClass::EqualRank => {
                            ra && rb && a == b && p.equal_rank_rule(a)
                        }
                        InteractionClass::ExtraExtra => !ra && !rb,
                        InteractionClass::RankExtra(d) => match d {
                            CrossDirection::RankInitiator => ra && !rb,
                            CrossDirection::ExtraInitiator => !ra && rb,
                            CrossDirection::Both => ra != rb,
                        },
                        InteractionClass::Pair {
                            initiator,
                            responder,
                        } => a == initiator && b == responder,
                    };
                    covered && p.transition(a, b).is_some()
                })
            });
            assert!(hit, "{what}: class {:?} covers no productive pair", spec.class);
        }
    }
    inhabited(&GenericRanking::new(12), "generic");
    inhabited(&RingOfTraps::new(12), "ring");
    inhabited(&LineOfTraps::new(12), "line");
    inhabited(&TreeRanking::new(12), "tree");
    inhabited(&LooseLeaderElection::with_timer(12, 5), "loose");
}

/// `schema_hash` is the result-cache key primitive: at a fixed population
/// the five core protocols must all fingerprint differently, and each
/// protocol must fingerprint differently across populations.
#[test]
fn schema_hash_distinct_across_core_protocols() {
    let n = 16;
    let hashes = [
        ("generic", GenericRanking::new(n).schema_hash()),
        ("ring", RingOfTraps::new(n).schema_hash()),
        ("line", LineOfTraps::new(n).schema_hash()),
        ("tree", TreeRanking::new(n).schema_hash()),
        ("loose", LooseLeaderElection::new(n).schema_hash()),
    ];
    for (i, (name_a, h_a)) in hashes.iter().enumerate() {
        for (name_b, h_b) in &hashes[i + 1..] {
            assert_ne!(h_a, h_b, "{name_a} and {name_b} share a schema hash");
        }
    }
    // Population is part of the fingerprint (a cached n=16 result must
    // never answer an n=32 job).
    assert_ne!(
        TreeRanking::new(16).schema_hash(),
        TreeRanking::new(32).schema_hash()
    );
    // And the fingerprint is reproducible across instances.
    assert_eq!(
        TreeRanking::new(16).schema_hash(),
        TreeRanking::new(16).schema_hash()
    );
}

/// The schema is what the engines consume, so a protocol passing
/// validation must run identically (per seed, batching off) on the jump
/// and count engines — spot-checked here for the sparse-pair protocol
/// (loose), closing the loop between validator and engines.
#[test]
fn validated_sparse_schema_runs_trace_identical_on_both_engines() {
    let n = 40;
    let p = LooseLeaderElection::new(n);
    let mut jump = JumpSimulation::new(&p, vec![p.leader_state(); n], 3).unwrap();
    let mut count = CountSimulation::new(&p, vec![p.leader_state(); n], 3)
        .unwrap()
        .with_batching(false);
    for _ in 0..50_000 {
        let j = jump.step_productive();
        let c = count.step_productive();
        assert_eq!(j, c);
        assert!(j.is_some(), "loose protocols never go silent");
    }
    assert_eq!(jump.counts(), count.counts());
    assert_eq!(jump.interactions(), count.interactions());
}
