//! Adversary-subsystem campaign through the public `ssr` surface: timed
//! fault plans produce the identical schedule on every engine, the jump
//! and exact-mode count engines agree draw for draw through mixed plans,
//! the batched count engine is bit-identical across worker-thread counts,
//! and non-convergent runs (Byzantine agents, churn) degrade gracefully
//! into a [`RunOutcome`] instead of erroring.

use ssr::prelude::*;

const FAULT_SEED: u64 = 0xFA17_0001;

/// A plan mixing every timed fault process the subsystem supports:
/// two one-shot bursts, background rate corruption, and churn.
fn mixed_plan(n: usize) -> FaultPlan {
    FaultPlan::new()
        .burst_at(6 * n as u128, 3)
        .burst_at(18 * n as u128, 2)
        .rate(1.0 / (40.0 * n as f64))
        .churn(1.0 / (80.0 * n as f64))
}

/// The jump engine and the count engine with batching disabled simulate
/// the embedded productive chain with the same RNG consumption, so a
/// fault plan driven by its own seeded stream must leave them in
/// bit-identical trajectories: equal outcomes (availability, excursions,
/// burst records) and equal final configurations — on the tree protocol,
/// whose schema exercises every interaction-class kind.
#[test]
fn jump_and_exact_count_are_trace_identical_under_a_mixed_plan() {
    let n = 96;
    let p = TreeRanking::new(n);
    let mut rng = Xoshiro256::seed_from_u64(41);
    let cfg = init::uniform_random(n, p.num_states(), &mut rng);
    let horizon = 400 * n as u64;
    let plan = mixed_plan(n);

    let mut jump = JumpSimulation::new(&p, cfg.clone(), 7).unwrap();
    let jump_out = run_with_plan(&mut jump, &plan, FAULT_SEED, horizon);

    let mut count = CountSimulation::new(&p, cfg, 7).unwrap().with_batching(false);
    let count_out = run_with_plan(&mut count, &plan, FAULT_SEED, horizon);

    assert_eq!(jump_out, count_out);
    assert_eq!(Engine::counts(&jump), Engine::counts(&count));
    assert!(
        jump_out.faults_injected >= 5,
        "two bursts plus background corruption injected faults"
    );
}

/// The fault process draws from a stream separate from the engine RNG,
/// so every engine — including the naive per-agent simulator — sees the
/// same burst times and fault counts under the same plan and fault seed.
#[test]
fn fault_schedules_are_identical_on_every_engine() {
    let n = 48;
    let p = RingOfTraps::new(n);
    let horizon = 600 * n as u64;
    let plan = FaultPlan::new()
        .burst_at(5 * n as u128, 4)
        .rate(1.0 / (50.0 * n as f64));

    let mut outs = Vec::new();
    for kind in [EngineKind::Naive, EngineKind::Jump, EngineKind::Count] {
        let mut e = make_engine(kind, &p, init::perfect_ranking(n), 3).unwrap();
        outs.push(run_with_plan(e.as_mut(), &plan, FAULT_SEED, horizon));
    }
    let schedule =
        |o: &RunOutcome| o.bursts.iter().map(|b| (b.time, b.faults)).collect::<Vec<_>>();
    for o in &outs[1..] {
        assert_eq!(o.faults_injected, outs[0].faults_injected);
        assert_eq!(schedule(o), schedule(&outs[0]));
    }
    // Jump and count additionally agree on every downstream observable.
    assert_eq!(outs[1], outs[2]);
}

/// Batch splits fan out over the worker pool with seed-derived per-task
/// RNG streams, so a batched count run under a fault plan is
/// bit-identical at any thread count — here 1 vs 4 workers at a
/// population where the count engine is the `Auto` choice.
#[test]
fn batched_count_run_is_bit_identical_across_thread_counts() {
    let n = 8192;
    let p = TreeRanking::new(n);
    let mut rng = Xoshiro256::seed_from_u64(17);
    let cfg = init::uniform_random(n, p.num_states(), &mut rng);
    let horizon = 40 * n as u64;
    let plan = FaultPlan::new()
        .burst_at(4 * n as u128, 32)
        .rate(1.0 / (20.0 * n as f64));

    let run = |threads: usize| {
        let mut e =
            make_engine_threaded(EngineKind::Count, &p, cfg.clone(), 23, threads).unwrap();
        let out = run_with_plan(e.as_mut(), &plan, FAULT_SEED, horizon);
        (out, e.counts().to_vec(), e.interactions_wide())
    };
    let serial = run(1);
    let pooled = run(4);
    assert_eq!(serial, pooled);
}

/// Byzantine agents never update: from a stacked start on `A_G` with `b`
/// agents pinned in state 0, the non-Byzantine agents rank among
/// themselves but state 0 keeps holding at least `b` agents forever, the
/// population is conserved through batched execution, and the run ends
/// at the horizon with degraded availability instead of a timeout error
/// or a panic.
#[test]
fn byzantine_agents_hold_their_state_through_batched_runs() {
    let n = 64;
    let b = 4;
    let p = GenericRanking::new(n);
    let horizon = 3_000_000; // far past A_G's stacked-start stabilisation
    let plan = FaultPlan::new().byzantine(b);

    let mut e = make_engine(EngineKind::Count, &p, vec![0; n], 29).unwrap();
    let out = run_with_plan(e.as_mut(), &plan, FAULT_SEED, horizon);

    assert!(e.counts()[0] >= b, "byzantine agents left state 0");
    assert_eq!(e.counts().iter().map(|&c| c as u64).sum::<u64>(), n as u64);
    assert!(!out.silent, "agents stuck sharing a rank block silence");
    assert!(out.availability < 1.0);
    assert!(out.max_k >= 1);
    assert!(out.report.interactions >= horizon);
}

/// Replacement churn swaps agents out for fresh arbitrary-state arrivals:
/// the population total is conserved and the events are tallied
/// separately from faults.
#[test]
fn churn_conserves_the_population() {
    let n = 512;
    let p = RingOfTraps::new(n);
    let horizon = 800 * n as u64;
    let plan = FaultPlan::new().churn(1.0 / (30.0 * n as f64));

    let mut e = make_engine(EngineKind::Jump, &p, init::perfect_ranking(n), 31).unwrap();
    let out = run_with_plan(e.as_mut(), &plan, FAULT_SEED, horizon);

    assert_eq!(e.counts().iter().map(|&c| c as u64).sum::<u64>(), n as u64);
    assert!(out.churn_events > 0);
    assert_eq!(out.faults_injected, 0, "churn is tallied separately");
}

/// The acceptance path end-to-end: a `Scenario` carrying a Byzantine
/// fault plan terminates gracefully with availability below 1.0 across
/// all trials, serial and parallel alike.
#[test]
fn scenario_byzantine_runs_degrade_gracefully() {
    let n = 24;
    let p = GenericRanking::new(n);
    let scenario = |threads: usize| {
        Scenario::new(&p)
            .init(Init::Stacked)
            .fault_plan(FaultPlan::new().byzantine(3))
            .trials(4)
            .base_seed(97)
            .max_interactions(200 * n as u64)
            .threads(threads)
            .run_outcomes()
    };
    let serial = scenario(1);
    let parallel = scenario(4);
    assert_eq!(serial, parallel);
    for out in &serial {
        assert!(!out.silent);
        assert!(out.availability < 1.0);
        assert!(out.report.interactions >= 200 * n as u64);
    }
}
