//! Exhaustive stability verification — machine-checked "stable & silent".
//!
//! The paper claims its protocols are *stable* (correct with probability 1)
//! and *silent* from **every** initial configuration. For small populations
//! this is not a matter of sampling: the model checker in `ssr-analysis`
//! enumerates the entire configuration space and proves (a) the only silent
//! configuration is the perfect ranking and (b) it is reachable from
//! everywhere. This example prints the certificates.
//!
//! Run: `cargo run --release --example verify_stability`

use ssr::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("exhaustive stability certificates (entire configuration space):\n");
    println!(
        "{:<18} {:>3} {:>8} {:>14} {:>8} {:>12}",
        "protocol", "n", "states", "configurations", "silent", "transitions"
    );

    let limit = 3_000_000;
    for n in [4usize, 6, 8] {
        let p = GenericRanking::new(n);
        let cert = verify_stability(&p, limit)?;
        print_row("generic A_G", n, p.num_states(), &cert);

        let p = RingOfTraps::new(n);
        let cert = verify_stability(&p, limit)?;
        print_row("ring of traps", n, p.num_states(), &cert);

        let p = LineOfTraps::new(n);
        let cert = verify_stability(&p, limit)?;
        print_row("line of traps", n, p.num_states(), &cert);

        let p = TreeRanking::with_buffer(n, 2);
        let cert = verify_stability(&p, limit)?;
        print_row("tree of ranks", n, p.num_states(), &cert);
    }

    println!(
        "\nevery protocol: exactly one silent configuration (the perfect \
         ranking), reachable from every configuration — the paper's \
         'stable + silent' claim, machine-checked."
    );
    Ok(())
}

fn print_row(name: &str, n: usize, states: usize, cert: &StabilityCertificate) {
    println!(
        "{:<18} {:>3} {:>8} {:>14} {:>8} {:>12}",
        name, n, states, cert.configurations, cert.silent_configurations, cert.transitions
    );
}
