//! Theorem 1 in action: recovery time scales with the distance `k`.
//!
//! The state-optimal ring-of-traps protocol stabilises in
//! `O(min(k·n^{3/2}, n² log² n))` from any `k`-distant configuration —
//! so a population that is *almost ranked* (small `k`, e.g. after a few
//! transient faults) recovers far faster than from scratch. This example
//! sweeps `k` at fixed `n` and prints the measured recovery times.
//!
//! Run with: `cargo run --release --example kdistant_recovery`

use ssr::prelude::*;

fn main() {
    let n = 240;
    let trials = 10;
    let ks = [1usize, 2, 4, 8, 16, 32, 64, 120];

    println!(
        "ring-of-traps, n = {n}: recovery from k-distant starts \
         ({trials} trials each)\n"
    );
    let protocol = RingOfTraps::new(n);
    let mut table = Table::new(vec![
        "k".into(),
        "median T".into(),
        "max T".into(),
        "T / k".into(),
    ]);

    for &k in &ks {
        let cfg = TrialConfig::new(trials).with_base_seed(k as u64);
        let results = run_trials(
            &protocol,
            |seed| {
                let mut rng = Xoshiro256::seed_from_u64(seed);
                init::k_distant(n, k, init::DuplicatePlacement::Random, &mut rng)
            },
            &cfg,
        );
        let s = Summary::of(&results.parallel_times());
        table.add_row(vec![
            k.to_string(),
            format!("{:.0}", s.median),
            format!("{:.0}", s.max),
            format!("{:.0}", s.median / k as f64),
        ]);
    }
    println!("{}", table.render());
    println!(
        "Theorem 1 predicts T ≈ k·n^(3/2) until the n²·log²n cap: the T/k \
         column flattens for small k and the growth tapers for large k."
    );
}
