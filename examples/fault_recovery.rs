//! Transient-fault recovery: the operational payoff of self-stabilisation.
//!
//! A stabilised population is hit by bursts of random state corruption —
//! radiation flips, crashed-and-restarted sensors, whatever the deployment
//! story is — and the ranking (and therefore the elected leader) heals
//! itself without any external intervention. The number of faults maps
//! directly onto the paper's `k`-distance, so Theorem 1 prices each burst.
//!
//! Run: `cargo run --release --example fault_recovery`

// Audited: example casts a tiny bounded f64 value to usize.
#![allow(clippy::cast_possible_truncation)]

use ssr::engine::faults::{rank_distance, recovery_after_faults};
use ssr::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n = 240;
    println!("== fault recovery at n = {n} ==\n");

    // Part 1: price a single burst of f faults for the ring protocol.
    let ring = RingOfTraps::new(n);
    println!("ring of traps (state-optimal): recovery cost vs faults");
    println!("{:>8} {:>8} {:>14}", "faults", "k-dist", "parallel time");
    for f in [1usize, 4, 16, 64] {
        let rep = recovery_after_faults(&ring, f, 42 + f as u64, u64::MAX)?;
        println!(
            "{:>8} {:>8} {:>14.0}",
            f, rep.distance_after_faults, rep.recovered.parallel_time
        );
    }

    // Part 2: a leader-election service riding on the tree protocol,
    // with faults injected while it is still converging.
    println!("\ntree protocol as a leader-election service under fire:");
    let tree = TreeRanking::new(n);
    let mut rng = Xoshiro256::seed_from_u64(7);
    let start = init::uniform_random(n, tree.num_states(), &mut rng);
    let mut sim = Simulation::new(&tree, start, 99)?;
    for burst in 1..=3 {
        sim.run_for(20 * n as u64, &mut ssr::engine::observer::NullObserver);
        for _ in 0..n / 10 {
            let victim = rng.below_usize(n);
            let garbage = rng.below(tree.num_states() as u64) as State;
            sim.inject_fault(victim, garbage);
        }
        let counts = sim.counts();
        println!(
            "  after burst {burst}: k-distance {}, parallel time {:.0}",
            rank_distance(counts, n),
            sim.parallel_time()
        );
    }
    let report = sim.run_until_silent(u64::MAX)?;
    let leader = sim
        .agents()
        .iter()
        .position(|&s| s == LEADER_RANK)
        .expect("perfect ranking has a leader");
    println!(
        "  healed: silent at parallel time {:.0}; leader = agent {leader} (rank {LEADER_RANK})",
        report.parallel_time,
    );
    assert!(init::is_perfect_ranking(sim.agents(), n));
    Ok(())
}
