//! Watch a ring of traps capture agents, step by step.
//!
//! Renders the per-trap occupancy of the §3 ring-of-traps protocol as an
//! ASCII strip at exponentially spaced checkpoints, making the paper's
//! intuition visible: excess agents descend inside traps (filling gaps —
//! Fact 1), gates eject every other arrival to the next trap, and the
//! weight `K = k₁ + 2k₂` only ever decreases.
//!
//! Run with: `cargo run --release --example trap_dynamics`

use ssr::prelude::*;
use ssr::engine::observer::NullObserver;

fn render(protocol: &RingOfTraps, counts: &[u32]) -> String {
    let chain = protocol.chain();
    let mut out = String::new();
    for t in chain.traps() {
        out.push('[');
        for b in (0..chain.size(t)).rev() {
            let c = counts[chain.state(t, b) as usize];
            out.push(match c {
                0 => '.',
                1 => 'o',
                2..=9 => char::from_digit(c, 10).unwrap(),
                _ => '#',
            });
        }
        out.push(']');
    }
    out
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n = 42; // m = 6: six traps of size 7
    let protocol = RingOfTraps::new(n);

    // Start with everything stacked on the gate of trap 0.
    let mut sim = Simulation::new(&protocol, vec![0; n], 4)?;

    println!(
        "ring of {} traps, n = {n}; '.' gap, 'o' single, digits = stacked \
         (top inner state on the left, gate on the right)\n",
        protocol.num_traps()
    );
    println!(
        "{:>10}  {}   K = {}",
        0,
        render(&protocol, sim.counts()),
        protocol.weight_k(sim.counts())
    );

    let mut checkpoint = 1_000u64;
    while !sim.is_silent() {
        let budget = checkpoint.saturating_sub(sim.interactions());
        sim.run_for(budget, &mut NullObserver);
        println!(
            "{:>10}  {}   K = {}  tidy = {}",
            sim.interactions(),
            render(&protocol, sim.counts()),
            protocol.weight_k(sim.counts()),
            protocol.is_tidy(sim.counts()),
        );
        checkpoint *= 2;
    }
    println!(
        "\nsilent after {} interactions (parallel time {:.0}); every trap \
         fully stabilised",
        sim.interactions(),
        sim.parallel_time()
    );
    Ok(())
}
