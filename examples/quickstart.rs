//! Quickstart: self-stabilising ranking with the tree protocol.
//!
//! Builds the `O(n log n)` tree-of-ranks protocol for 500 agents, starts
//! from the worst imaginable configuration (everyone stacked in one
//! state), runs to silence, and prints the outcome.
//!
//! Run with: `cargo run --release --example quickstart`

use ssr::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n = 500;
    let protocol = TreeRanking::new(n);

    println!(
        "protocol: {} — {} rank states + {} extra states",
        protocol.name(),
        protocol.num_rank_states(),
        protocol.num_extra_states()
    );

    // Adversarial start: all agents in rank state 0.
    let start = vec![0; n];
    let mut sim = JumpSimulation::new(&protocol, start, 42)?;
    let report = sim.run_until_silent(u64::MAX)?;

    assert!(sim.is_silent());
    println!(
        "self-stabilised: {} interactions  |  parallel time {:.1}  |  {} productive",
        report.interactions, report.parallel_time, report.productive_interactions
    );

    // Every rank state now hosts exactly one agent.
    let perfectly_ranked = sim.counts()[..n].iter().all(|&c| c == 1);
    println!("perfect ranking: {perfectly_ranked}");

    // Parallel time should be near n·log n, far below the Θ(n²) baseline.
    let nlogn = n as f64 * (n as f64).log2();
    println!(
        "parallel time / (n log₂ n) = {:.2}   (n² would be {:.0}× larger)",
        report.parallel_time / nlogn,
        n as f64 / (n as f64).log2()
    );
    Ok(())
}
