//! Loose vs silent leader election: the state/holding-time trade-off.
//!
//! The paper's silent protocols need at least `n` states but hold their
//! leader forever. The loose-stabilisation alternative (related work)
//! squeezes into `O(log n)` states by renting the leadership instead of
//! owning it: after convergence the unique leader survives only until a
//! follower's timer spuriously drains. This example runs both side by
//! side on the same population.
//!
//! Run: `cargo run --release --example loose_leader`

use ssr::engine::observer::NullObserver;
use ssr::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n = 128;
    println!("== leader election with n = {n} agents ==\n");

    // Silent: the tree-of-ranks protocol (n ranks + O(log n) extras).
    let tree = TreeRanking::new(n);
    let mut rng = Xoshiro256::seed_from_u64(2);
    let start = init::uniform_random(n, tree.num_states(), &mut rng);
    let mut sim = Simulation::new(&tree, start, 3)?;
    let report = sim.run_until_silent(u64::MAX)?;
    println!(
        "tree protocol  : {} states, leader elected at parallel time {:.0}, \
         held FOREVER (silent configuration is absorbing)",
        tree.num_states(),
        report.parallel_time
    );

    // Loose convergence: O(log n) states total, from an arbitrary start,
    // with the default (comfortably logarithmic) timer ceiling.
    let loose = LooseLeaderElection::new(n);
    let start = init::uniform_random(n, loose.num_states(), &mut rng);
    let mut sim = Simulation::new(&loose, start, 5)?;
    while loose.leader_count(sim.counts()) != 1 {
        sim.run_for(64, &mut NullObserver);
    }
    println!(
        "loose (τ = {:>2}) : {} states, leader elected at parallel time {:.0}, \
         held only until some follower's timer drains",
        loose.timer_max(),
        loose.num_states(),
        sim.parallel_time()
    );

    // The lease length: start each τ from the canonical converged
    // configuration (one leader, all timers full) and wait for the first
    // disturbance (a spurious second leader).
    println!("\nleadership lease vs timer ceiling τ (same n):");
    for tau in [4u32, 8, 16] {
        let loose = LooseLeaderElection::with_timer(n, tau);
        let mut start = vec![loose.timer_max(); n];
        start[0] = loose.leader_state();
        let mut sim = Simulation::new(&loose, start, 11)?;
        let budget = 20_000_000u64;
        let mut lost_at = None;
        while sim.interactions() < budget {
            sim.run_for(64, &mut NullObserver);
            if loose.leader_count(sim.counts()) != 1 {
                lost_at = Some(sim.parallel_time());
                break;
            }
        }
        let hold = match lost_at {
            Some(t) => format!("lease lost after parallel time {t:.0}"),
            None => format!(
                "lease survived the whole budget (parallel time {:.0})",
                budget / n as u64
            ),
        };
        println!("  τ = {tau:>2} ({} states): {hold}", loose.num_states());
    }

    println!(
        "\nthe lease length explodes with τ — loose stabilisation trades the \
         paper's ≥ n-state requirement for finite (but tunable) leadership."
    );
    Ok(())
}
