//! Self-stabilising leader election with transient-fault recovery.
//!
//! Ranking solves leader election: the agent that stabilises in rank 0 is
//! the leader. Because the protocols are *self-stabilising*, the system
//! re-elects after arbitrary state corruption — we demonstrate by zapping
//! a third of the population mid-run and watching it recover.
//!
//! Run with: `cargo run --release --example leader_election`

// Audited: example casts a tiny bounded f64 value to usize.
#![allow(clippy::cast_possible_truncation)]

use ssr::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n = 120;
    let protocol = RingOfTraps::new(n);
    let mut rng = Xoshiro256::seed_from_u64(2025);

    // Phase 1: elect from an arbitrary k-distant configuration.
    let start = init::k_distant(n, 17, init::DuplicatePlacement::Random, &mut rng);
    let outcome = elect_leader(&protocol, start, 7, u64::MAX)?;
    println!(
        "elected agent #{} as leader after parallel time {:.0}",
        outcome.leader, outcome.report.parallel_time
    );

    // Phase 2: transient faults — corrupt 40 random agents, then watch the
    // protocol silently re-rank (and hence re-elect) without intervention.
    let mut sim = Simulation::new(&protocol, init::perfect_ranking(n), 99)?;
    assert!(sim.is_silent(), "perfect ranking is silent");

    for _ in 0..40 {
        let victim = rng.below_usize(n);
        let garbage = rng.below(n as u64) as State;
        sim.inject_fault(victim, garbage);
    }
    let distance = init::distance(sim.agents(), n);
    println!("injected faults: configuration is now {distance}-distant");

    let report = sim.run_until_silent(u64::MAX)?;
    let leader = sim
        .agents()
        .iter()
        .position(|&s| s == LEADER_RANK)
        .expect("silent ranking has a rank-0 agent");
    println!(
        "recovered in parallel time {:.0}; leader is agent #{leader}",
        report.parallel_time
    );
    assert!(init::is_perfect_ranking(sim.agents(), n));

    // Phase 3: safety — once silent, nothing ever changes again.
    let before = sim.agents().to_vec();
    sim.run_for(100_000, &mut ssr::engine::observer::NullObserver);
    assert_eq!(before, sim.agents(), "silent configurations are stable");
    println!("stability check passed: 100k further interactions changed nothing");
    Ok(())
}
