//! Validate the simulators against the exact Markov chain.
//!
//! For small populations the full configuration space fits in memory, so
//! the expected stabilisation time can be computed *exactly* by solving
//! the first-step linear system — no randomness involved. This example
//! cross-checks both simulators' trial means against the exact values for
//! all four protocols: the strongest end-to-end correctness evidence in
//! the repository.
//!
//! Run with: `cargo run --release --example exact_validation`

use ssr::analysis::exact::expected_interactions;
use ssr::prelude::*;

fn simulated_mean<P: InteractionSchema>(p: &P, start: &[State], trials: u64) -> (f64, f64) {
    let times: Vec<f64> = (0..trials)
        .map(|t| {
            let mut sim = JumpSimulation::new(p, start.to_vec(), 80_000 + t)
                .expect("valid start configuration");
            sim.run_until_silent(u64::MAX).expect("stable").interactions as f64
        })
        .collect();
    let s = Summary::of(&times);
    (s.mean, s.ci95_half_width())
}

fn check<P: InteractionSchema>(p: &P, start: Vec<State>) {
    let exact = expected_interactions(p, &start, 500_000)
        .expect("state space within limits");
    let (mean, ci) = simulated_mean(p, &start, 30_000);
    let rel = (exact - mean).abs() / exact;
    println!(
        "{:<28} exact {:>10.3}   simulated {:>10.3} ± {:>6.3}   gap {:>6.3}% {}",
        p.name(),
        exact,
        mean,
        ci,
        rel * 100.0,
        if rel < 0.02 { "✓" } else { "✗" }
    );
}

fn main() {
    println!(
        "expected interactions to silence, exact (linear system over the \
         reachable configuration space) vs simulated (30k jump-chain \
         trials):\n"
    );
    check(&GenericRanking::new(5), vec![0; 5]);
    check(&GenericRanking::new(6), vec![3; 6]);
    check(&RingOfTraps::new(6), vec![0; 6]);
    check(&RingOfTraps::new(8), vec![7; 8]);
    check(&LineOfTraps::new(6), vec![6; 6]); // start in X
    check(&TreeRanking::with_buffer(5, 1), vec![0; 5]);
    println!(
        "\nagreement within the confidence interval on every line means the \
         jump-chain simulator realises exactly the paper's Markov chain."
    );
}
