//! Head-to-head comparison of all four protocols from the paper.
//!
//! Runs the `Θ(n²)` baseline `A_G`, the state-optimal ring of traps, the
//! one-extra-state line protocol, and the `O(n log n)` tree protocol on
//! identical uniform-random starting configurations, and prints a table of
//! parallel stabilisation times.
//!
//! Run with: `cargo run --release --example compare_protocols`

use ssr::prelude::*;

fn measure<P: InteractionSchema + Sync>(p: &P, n: usize, trials: usize) -> Summary {
    let cfg = TrialConfig::new(trials).with_base_seed(7);
    let results = run_trials(
        p,
        |seed| {
            let mut rng = Xoshiro256::seed_from_u64(seed);
            init::uniform_random(n, p.num_states(), &mut rng)
        },
        &cfg,
    );
    Summary::of(&results.parallel_times())
}

fn main() {
    let n = 380;
    let trials = 12;
    println!("n = {n}, {trials} uniform-random trials per protocol\n");

    let generic = GenericRanking::new(n);
    let ring = RingOfTraps::new(n);
    let line = LineOfTraps::new(n);
    let tree = TreeRanking::new(n);

    let mut table = Table::new(vec![
        "protocol".into(),
        "extra states".into(),
        "median T".into(),
        "max T".into(),
        "vs A_G".into(),
    ]);

    let rows: Vec<(&str, usize, Summary)> = vec![
        ("generic A_G", generic.num_extra_states(), measure(&generic, n, trials)),
        ("ring of traps", ring.num_extra_states(), measure(&ring, n, trials)),
        ("line of traps", line.num_extra_states(), measure(&line, n, trials)),
        ("tree of ranks", tree.num_extra_states(), measure(&tree, n, trials)),
    ];

    let baseline = rows[0].2.median;
    for (name, extra, s) in &rows {
        table.add_row(vec![
            name.to_string(),
            extra.to_string(),
            format!("{:.0}", s.median),
            format!("{:.0}", s.max),
            format!("{:.2}x", s.median / baseline),
        ]);
    }
    println!("{}", table.render());
    println!("T = parallel stabilisation time (interactions / n)");
    println!(
        "expected shape: tree ≪ line < ring ≈ A_G at this size; the gap \
         between tree and the state-optimal protocols widens with n."
    );
}
